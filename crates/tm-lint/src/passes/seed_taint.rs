//! Seed-taint: every RNG constructed in sim/defense code must be
//! data-flow-reachable from a scenario seed.
//!
//! The determinism contract says the simulation is a pure function of
//! `(scenario, seed)`. The `unseeded-rng` token rule catches ambient
//! entropy (`thread_rng`, `OsRng`), but it cannot see an RNG that is
//! *seeded* — just from the wrong value: a literal (`seed_from_u64(42)`),
//! or a laundered argument that never flowed from the scenario seed. This
//! pass tracks taint per function:
//!
//! * a parameter or `let` binding whose name mentions `seed`/`rng`/
//!   `entropy` is tainted (the seed always travels under those names in
//!   this workspace — naming *is* part of the contract);
//! * a `let` initializer that mentions a tainted identifier, or calls a
//!   derivation fn (`fork`/`stream`/`stream_seed`/`derive`/`splitmix64`),
//!   taints its bindings;
//! * every RNG construction (`seed_from_u64(…)`, `from_state(…)`) must
//!   then take a tainted argument: a literal-only argument is a
//!   *literal-seeded* RNG, an untainted one is *argument-laundered*.
//!
//! The analysis is intra-procedural and scope-insensitive by design —
//! cross-fn flow is exactly what the naming convention carries.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::parser::summarize_expr;
use crate::rules::Diagnostic;

use super::{AnalyzedFile, Pass, Workspace};

/// Calls whose result is a value derived from an existing seed/RNG.
const DERIVE_CALLS: &[&str] = &["fork", "stream", "stream_seed", "derive", "splitmix64"];

/// RNG construction entry points in `tm_rand`.
const CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_state"];

/// The seed-taint pass.
pub struct SeedTaint;

impl Pass for SeedTaint {
    fn name(&self) -> &'static str {
        "seed-taint"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["seed-taint"]
    }

    fn run(&self, unit: &AnalyzedFile, _ws: &Workspace) -> Vec<Diagnostic> {
        let (Some(lexed), Some(ast)) = (unit.lexed, unit.ast) else {
            return Vec::new();
        };
        let toks = &lexed.tokens;
        let mut out = Vec::new();
        ast.for_each_fn(&mut |def, _impl_ty, cfg_test| {
            if cfg_test {
                return;
            }
            let Some(body) = &def.body else { return };

            // Taint seeding: seedy params, then let-bindings in order.
            let mut tainted: BTreeSet<&str> = def
                .params
                .iter()
                .map(String::as_str)
                .filter(|p| is_seedy(p))
                .collect();
            for l in &body.lets {
                let derived = l.init.as_ref().is_some_and(|init| {
                    init.idents
                        .iter()
                        .any(|id| is_seedy(id) || tainted.contains(id.as_str()))
                        || init
                            .calls
                            .iter()
                            .any(|c| DERIVE_CALLS.contains(&c.as_str()))
                });
                if derived {
                    tainted.extend(l.names.iter().map(String::as_str));
                }
            }

            // Construction sites: `seed_from_u64(…)` / `from_state(…)`.
            let mut j = body.tokens.start;
            while j < body.tokens.end {
                let t = &toks[j];
                if t.kind == TokKind::Ident
                    && CONSTRUCTORS.contains(&t.text.as_str())
                    && toks.get(j + 1).map(|n| n.text.as_str()) == Some("(")
                {
                    let close = matching_paren(toks, j + 1, body.tokens.end);
                    let arg = summarize_expr(toks, j + 2..close);
                    let arg_text = render(toks, j + 2..close);
                    if arg.literal_only {
                        out.push(Diagnostic {
                            path: unit.rel.to_string(),
                            line: t.line,
                            rule: "seed-taint",
                            message: format!(
                                "`{}({arg_text})` seeds an RNG from a literal; every sim RNG must \
                                 derive from the scenario seed via fork()/stream()/stream_seed()",
                                t.text
                            ),
                        });
                    } else {
                        let ok = arg
                            .idents
                            .iter()
                            .any(|id| is_seedy(id) || tainted.contains(id.as_str()))
                            || arg.calls.iter().any(|c| DERIVE_CALLS.contains(&c.as_str()));
                        if !ok {
                            out.push(Diagnostic {
                                path: unit.rel.to_string(),
                                line: t.line,
                                rule: "seed-taint",
                                message: format!(
                                    "`{}({arg_text})`: the seed value is not data-flow-reachable \
                                     from a scenario seed in this fn (argument-laundered); thread \
                                     the seed through a parameter or derive it via \
                                     fork()/stream_seed()",
                                    t.text
                                ),
                            });
                        }
                    }
                    j = close;
                }
                j += 1;
            }
        });
        out
    }
}

/// Whether a name is part of the seed-carrying naming convention.
fn is_seedy(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("seed") || lower.contains("rng") || lower.contains("entropy")
}

/// Index of the `)` matching the `(` at `open` (clamped to `end`).
fn matching_paren(toks: &[crate::lexer::Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        match toks[k].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    end
}

/// Renders a token range back to compact source-ish text (truncated).
fn render(toks: &[crate::lexer::Tok], range: std::ops::Range<usize>) -> String {
    let mut s = String::new();
    for t in &toks[range] {
        if !s.is_empty() && t.kind != TokKind::Punct && !s.ends_with(['(', '.', ':', '&']) {
            s.push(' ');
        }
        s.push_str(&t.text);
        if s.len() > 48 {
            s.truncate(45);
            s.push('…');
            break;
        }
    }
    s
}
