//! Telemetry-name conformance: metric names must live in a registered
//! namespace.
//!
//! `tm-telemetry` registers metrics lazily by name, so a typo'd name
//! (`netsmi.switch.tx_frames`) is not an error — it just creates a fresh
//! metric nobody reads, and the real one silently stays at zero. This
//! pass checks every literal name handed to a telemetry write call
//! against the registered namespaces and a strict lexical shape:
//! `namespace.component.metric` in `[a-z0-9_]` segments.
//!
//! The namespace registry mirrors the crates that own sim-visible
//! metrics: `netsim.*` (engine/links/switches/hosts/faults),
//! `controller.*` (discovery, LLDP, host tracking), `traffic.*` (the
//! flow-level traffic engine's offered/aggregated/expanded accounting),
//! and the detector namespaces `topoguard.*` / `sphinx.*` / `ids.*`.

use crate::lexer::TokKind;
use crate::rules::Diagnostic;

use super::tokens::test_code_ranges;
use super::{AnalyzedFile, Pass, Workspace};

/// The tm-telemetry write API: first argument is the metric name.
const METHODS: &[&str] = &[
    "counter_inc",
    "counter_add",
    "counter_set",
    "gauge_set",
    "gauge_max",
    "observe_ns",
    "observe_duration",
];

/// Registered metric namespaces.
const NAMESPACES: &[&str] = &[
    "netsim",
    "controller",
    "topoguard",
    "sphinx",
    "ids",
    "traffic",
];

/// The telemetry-name conformance pass.
pub struct TelemetryNames;

impl Pass for TelemetryNames {
    fn name(&self) -> &'static str {
        "telemetry-names"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["telemetry-names"]
    }

    fn run(&self, unit: &AnalyzedFile, _ws: &Workspace) -> Vec<Diagnostic> {
        let Some(lexed) = unit.lexed else {
            return Vec::new();
        };
        let toks = &lexed.tokens;
        let excluded = test_code_ranges(toks);
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || !METHODS.contains(&t.text.as_str()) {
                continue;
            }
            // Skip the method *definitions* in tm-telemetry itself.
            if i > 0 && toks[i - 1].text == "fn" {
                continue;
            }
            if toks.get(i + 1).map(|n| n.text.as_str()) != Some("(") {
                continue;
            }
            // Only literal names are checkable; dynamic names pass through.
            let Some(arg) = toks.get(i + 2) else { continue };
            if arg.kind != TokKind::Literal || !arg.text.starts_with('"') {
                continue;
            }
            if excluded.iter().any(|r| r.contains(&i)) {
                continue;
            }
            let name = arg.text.trim_matches('"');
            if let Some(problem) = vet_name(name) {
                out.push(Diagnostic {
                    path: unit.rel.to_string(),
                    line: t.line,
                    rule: "telemetry-names",
                    message: format!("metric name \"{name}\" {problem}"),
                });
            }
        }
        out
    }
}

/// Validates one metric name; returns the problem description if bad.
fn vet_name(name: &str) -> Option<String> {
    let mut segs = name.split('.');
    let ns = segs.next().unwrap_or("");
    if !NAMESPACES.contains(&ns) {
        return Some(format!(
            "is outside the registered namespaces ({}); a typo'd namespace creates a metric \
             nobody reads",
            NAMESPACES.join(", ")
        ));
    }
    let rest: Vec<&str> = segs.collect();
    if rest.is_empty() {
        return Some("has no component/metric segments after the namespace".to_string());
    }
    for seg in rest {
        if seg.is_empty() {
            return Some("has an empty dot-separated segment".to_string());
        }
        if !seg
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Some(format!(
                "segment `{seg}` is not snake_case ([a-z0-9_] only)"
            ));
        }
    }
    None
}
