//! The pass framework: every lint is a [`Pass`] run over analyzed files.
//!
//! Two kinds of pass exist, distinguished by what they can see:
//!
//! * **Local passes** (token rules, seed-taint, telemetry-names) see one
//!   file's tokens and item tree. Their diagnostics depend only on file
//!   content, so they run once per content hash and are cached.
//! * **Workspace passes** (panic-reachability) see the whole-workspace
//!   [`Workspace`] summary — the symbol index and call graph built from
//!   every file's [`FnFact`]s — and run on every lint invocation (they
//!   are cheap: the expensive per-file extraction is cached).
//!
//! The stale-allow ratchet is not a pass: it is part of diagnostic
//! assembly in [`crate::rules`], because it needs to observe which allow
//! directives ended up suppressing nothing after *all* passes ran.

pub mod panic_reach;
pub mod seed_taint;
pub mod telemetry_names;
pub mod tokens;

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::Ast;
use crate::lexer::Lexed;
use crate::rules::Diagnostic;

/// One analyzed file as seen by a pass. Fresh analyses carry the lexed
/// tokens and item tree; cache hits carry only the distilled facts, which
/// is all a workspace pass needs.
pub struct AnalyzedFile<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Token stream — `None` when the file came from the cache.
    pub lexed: Option<&'a Lexed>,
    /// Item tree — `None` when the file came from the cache.
    pub ast: Option<&'a Ast>,
    /// Function summaries extracted from this file.
    pub fns: &'a [FnFact],
}

/// A lint pass. `run` returns raw diagnostics; tier deny-filtering and
/// allow-directive accounting happen in the engine, not in passes.
pub trait Pass {
    /// Stable pass name, used for per-pass stats in `TM_LINT_JSON`.
    fn name(&self) -> &'static str;
    /// The rule names this pass can emit.
    fn rules(&self) -> &'static [&'static str];
    /// Whether the pass needs the whole-workspace view (and so runs at
    /// assembly time over cached facts rather than at analysis time).
    fn needs_workspace(&self) -> bool {
        false
    }
    /// Runs the pass over one file.
    fn run(&self, unit: &AnalyzedFile, ws: &Workspace) -> Vec<Diagnostic>;
}

/// All passes, in execution order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(tokens::TokenRules),
        Box::new(seed_taint::SeedTaint),
        Box::new(telemetry_names::TelemetryNames),
        Box::new(panic_reach::PanicReach),
    ]
}

/// A summarized function: what the workspace symbol index stores per fn.
/// Serialized into the lint cache, so keep it plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFact {
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Enclosing `impl` type head, if the fn is a method.
    pub impl_ty: Option<String>,
    /// Whether the fn has `pub` visibility.
    pub is_pub: bool,
    /// Outgoing calls, in source order.
    pub calls: Vec<CallFact>,
    /// Potentially-panicking sites found in the body.
    pub panics: Vec<PanicFact>,
}

/// One call site: `Foo::bar(…)` keeps the `Foo` qualifier for sharper
/// symbol resolution; `.bar(…)` and `bar(…)` have none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFact {
    /// Path qualifier immediately before `::name(`, when present.
    pub qual: Option<String>,
    /// Called fn/method name.
    pub name: String,
}

/// One potentially-panicking site, message prebuilt at extraction time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicFact {
    /// 1-indexed line.
    pub line: u32,
    /// Full diagnostic message.
    pub detail: String,
}

/// A well-formed allow directive, reduced to what suppression accounting
/// needs. Malformed directives never get this far — they are already
/// `bad-directive` diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirFact {
    /// 1-indexed line of the directive.
    pub line: u32,
    /// Whether this is `allow-file` (whole file).
    pub file_scope: bool,
    /// Rules the directive allows.
    pub rules: Vec<String>,
    /// Lines the directive covers (empty for file scope).
    pub covered: Vec<u32>,
}

/// A raw (pre-allow-filtering) diagnostic, cache-serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDiag {
    /// Rule name (interned — one of [`crate::rules::rule_names`]).
    pub rule: &'static str,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// Everything the engine needs to re-assemble a file's report without
/// re-reading its source: the cacheable unit of incremental linting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileFacts {
    /// Raw diagnostics from local passes, already tier-deny-filtered
    /// (the config hash is part of the cache key, so this is safe).
    pub raw: Vec<RawDiag>,
    /// Well-formed allow directives.
    pub dirs: Vec<DirFact>,
    /// Function summaries (non-`cfg(test)` fns only).
    pub fns: Vec<FnFact>,
}

/// The whole-workspace view: a symbol index over every file's functions
/// and the scenario-reachability closure computed from it.
///
/// Resolution is name-based and deliberately over-approximate: a call
/// `Foo::bar(…)` resolves to fns named `bar` in `impl Foo` blocks (or
/// any `bar` when no such impl exists); `.bar(…)`/`bar(…)` resolve to
/// every fn named `bar`. Over-approximation is the safe direction for a
/// reachability *lint* — it can only widen the checked set.
#[derive(Debug, Default)]
pub struct Workspace {
    fns: Vec<(String, FnFact)>, // (rel path, fact)
    reachable: Vec<bool>,
}

impl Workspace {
    /// An empty workspace, for running local passes at analysis time.
    pub fn empty() -> Workspace {
        Workspace::default()
    }

    /// Builds the index and computes the reachability closure from the
    /// entry set: `Simulator`'s public API plus every `run`/`run_*` fn.
    pub fn build(files: &[(String, &FileFacts)]) -> Workspace {
        let mut fns: Vec<(String, FnFact)> = Vec::new();
        for (rel, facts) in files {
            for f in &facts.fns {
                fns.push((rel.clone(), f.clone()));
            }
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, (_, f)) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
            if let Some(ty) = &f.impl_ty {
                by_qual
                    .entry((ty.as_str(), f.name.as_str()))
                    .or_default()
                    .push(i);
            }
        }
        let mut reachable = vec![false; fns.len()];
        let mut queue: Vec<usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, (_, f))| is_entry(f))
            .map(|(i, _)| i)
            .collect();
        for &i in &queue {
            reachable[i] = true;
        }
        while let Some(i) = queue.pop() {
            // Worklist over the call edges of fn `i`.
            let calls = fns[i].1.calls.clone();
            for call in calls {
                let targets: &[usize] = match &call.qual {
                    Some(q) => by_qual
                        .get(&(q.as_str(), call.name.as_str()))
                        .map(Vec::as_slice)
                        .unwrap_or_else(|| {
                            by_name
                                .get(call.name.as_str())
                                .map(Vec::as_slice)
                                .unwrap_or(&[])
                        }),
                    None => by_name
                        .get(call.name.as_str())
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                };
                for &t in targets {
                    if !reachable[t] {
                        reachable[t] = true;
                        queue.push(t);
                    }
                }
            }
        }
        Workspace { fns, reachable }
    }

    /// Iterates the reachable fns of one file.
    pub fn reachable_fns<'a>(&'a self, rel: &'a str) -> impl Iterator<Item = &'a FnFact> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(i, (r, _))| self.reachable[*i] && r == rel)
            .map(|(_, (_, f))| f)
    }

    /// Whether a fn (by file and name) is scenario-reachable. Used by the
    /// fixture tests.
    pub fn is_reachable(&self, rel: &str, name: &str) -> bool {
        self.fns
            .iter()
            .enumerate()
            .any(|(i, (r, f))| self.reachable[i] && r == rel && f.name == name)
    }

    /// Total number of indexed fns.
    pub fn fn_count(&self) -> usize {
        self.fns.len()
    }
}

/// The scenario entry set: `Simulator`'s public API plus scenario
/// `run*` functions.
fn is_entry(f: &FnFact) -> bool {
    (f.is_pub && f.impl_ty.as_deref() == Some("Simulator"))
        || f.name == "run"
        || f.name.starts_with("run_")
}

/// Shared helper: the set of identifiers appearing inside the argument
/// lists of `assert!`-family macros in a body token range. Both flow
/// passes treat an assert that mentions a value as a guard on it.
pub(crate) fn assert_guarded_idents(
    toks: &[crate::lexer::Tok],
    range: std::ops::Range<usize>,
) -> BTreeSet<String> {
    use crate::lexer::TokKind;
    let mut out = BTreeSet::new();
    let mut j = range.start;
    while j < range.end {
        let t = &toks[j];
        let is_assert = t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "assert"
                    | "assert_eq"
                    | "assert_ne"
                    | "debug_assert"
                    | "debug_assert_eq"
                    | "debug_assert_ne"
            );
        if is_assert
            && toks.get(j + 1).map(|n| n.text.as_str()) == Some("!")
            && toks.get(j + 2).map(|n| n.text.as_str()) == Some("(")
        {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < range.end {
                match toks[k].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if toks[k].kind == TokKind::Ident {
                    out.insert(toks[k].text.clone());
                }
                k += 1;
            }
            j = k;
        }
        j += 1;
    }
    out
}
