//! The `tm-lint.toml` tier map.
//!
//! The linter's unit of policy is a *tier*: a set of workspace paths that
//! share a determinism posture. `sim-core` and `defense` code must be a
//! pure function of `(scenario, seed)`, so every rule applies; `tooling`
//! (the bench harness, telemetry's wall-span side channel, the linter
//! itself) legitimately reads wall clocks but still must not introduce
//! unseeded randomness.
//!
//! The parser handles exactly the subset of TOML the config uses —
//! `[section]` headers and `key = ["a", "b"]` string arrays — by hand, in
//! keeping with the workspace's zero-dependency policy. Anything else in
//! the file is an error: a config that silently half-parses would be a
//! hole in the contract.

use std::collections::BTreeMap;

use crate::rules::{meta_rules, rule_names};

/// One tier: the paths it covers and the rules it denies.
#[derive(Debug, Default, Clone)]
pub struct Tier {
    /// Workspace-relative path prefixes (e.g. `crates/netsim`).
    pub paths: Vec<String>,
    /// Rule names denied in this tier.
    pub deny: Vec<String>,
}

/// The parsed tier map, keyed by tier name.
#[derive(Debug, Default)]
pub struct Config {
    /// All tiers, sorted by name (BTreeMap for deterministic iteration).
    pub tiers: BTreeMap<String, Tier>,
}

impl Config {
    /// Parses the config text. Errors carry a line number and are fatal:
    /// the linter refuses to run with a policy it only partly understood.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut current: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                let tier = name.strip_prefix("tier.").ok_or_else(|| {
                    format!("line {lineno}: expected [tier.<name>], got [{name}]")
                })?;
                cfg.tiers.insert(tier.to_string(), Tier::default());
                current = Some(tier.to_string());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected key = [\"…\"]"))?;
            let tier_name = current
                .as_ref()
                .ok_or_else(|| format!("line {lineno}: key outside any [tier.*] section"))?;
            let values = parse_string_array(value.trim())
                .ok_or_else(|| format!("line {lineno}: expected a [\"…\", …] string array"))?;
            let tier = cfg.tiers.get_mut(tier_name).ok_or("tier vanished")?;
            match key.trim() {
                "paths" => tier.paths = values,
                "deny" => tier.deny = values,
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("config defines no tiers".into());
        }
        for (name, tier) in &self.tiers {
            if tier.paths.is_empty() {
                return Err(format!("tier `{name}` covers no paths"));
            }
            let mut seen = std::collections::BTreeSet::new();
            for rule in &tier.deny {
                if !rule_names().contains(&rule.as_str()) {
                    return Err(format!(
                        "tier `{name}` denies unknown rule `{rule}` (known: {})",
                        rule_names().join(", ")
                    ));
                }
                if meta_rules().contains(&rule.as_str()) {
                    return Err(format!(
                        "tier `{name}` lists meta-rule `{rule}`; meta-rules are always active \
                         in every tier and may not appear in deny lists"
                    ));
                }
                if !seen.insert(rule.as_str()) {
                    return Err(format!("tier `{name}` denies `{rule}` twice"));
                }
            }
        }
        Ok(())
    }

    /// Resolves a workspace-relative path (forward slashes) to its tier by
    /// longest matching prefix. `None` means the file is not covered — the
    /// caller reports that as a diagnostic so the tier map stays total.
    pub fn tier_for(&self, rel_path: &str) -> Option<(&str, &Tier)> {
        let mut best: Option<(&str, &Tier, usize)> = None;
        for (name, tier) in &self.tiers {
            for prefix in &tier.paths {
                let matches = rel_path == prefix
                    || rel_path
                        .strip_prefix(prefix.as_str())
                        .is_some_and(|rest| rest.starts_with('/'));
                let better = match &best {
                    None => true,
                    Some((_, _, len)) => prefix.len() > *len,
                };
                if matches && better {
                    best = Some((name, tier, prefix.len()));
                }
            }
        }
        best.map(|(name, tier, _)| (name, tier))
    }
}

/// Strips a `#` comment, respecting `"` quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b", "c"]` (trailing comma tolerated).
fn parse_string_array(s: &str) -> Option<Vec<String>> {
    let inner = s.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(part.strip_prefix('"')?.strip_suffix('"')?.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# tier map
[tier.sim-core]
paths = ["crates/netsim", "src"]
deny = ["wall-clock", "threads"]

[tier.tooling]
paths = ["crates/bench"] # timing harness
deny = ["unseeded-rng"]
"#;

    #[test]
    fn parses_tiers_and_resolves_longest_prefix() {
        let cfg = Config::parse(SAMPLE).expect("parses");
        assert_eq!(cfg.tiers.len(), 2);
        let (name, tier) = cfg
            .tier_for("crates/netsim/src/engine.rs")
            .expect("covered");
        assert_eq!(name, "sim-core");
        assert_eq!(tier.deny, vec!["wall-clock", "threads"]);
        assert_eq!(
            cfg.tier_for("crates/bench/src/harness.rs")
                .expect("covered")
                .0,
            "tooling"
        );
        assert!(cfg.tier_for("crates/unknown/src/lib.rs").is_none());
        // Prefix must match on a path boundary.
        assert!(cfg.tier_for("crates/netsim-extras/src/lib.rs").is_none());
    }

    #[test]
    fn unknown_rule_is_fatal() {
        // A typo'd rule name must not silently deny nothing.
        let bad = "[tier.x]\npaths = [\"src\"]\ndeny = [\"no-such-rule\"]\n";
        let err = Config::parse(bad).unwrap_err();
        assert!(err.contains("unknown rule `no-such-rule`"), "{err}");
        let typo = "[tier.x]\npaths = [\"src\"]\ndeny = [\"wall-clocks\"]\n";
        assert!(Config::parse(typo).unwrap_err().contains("wall-clocks"));
    }

    #[test]
    fn meta_rules_in_deny_lists_are_fatal() {
        for meta in ["stale-allow", "bad-directive"] {
            let bad = format!("[tier.x]\npaths = [\"src\"]\ndeny = [\"{meta}\"]\n");
            let err = Config::parse(&bad).unwrap_err();
            assert!(err.contains("meta-rule"), "{err}");
        }
    }

    #[test]
    fn duplicate_deny_entries_are_fatal() {
        let bad = "[tier.x]\npaths = [\"src\"]\ndeny = [\"threads\", \"threads\"]\n";
        assert!(Config::parse(bad).unwrap_err().contains("twice"));
    }

    #[test]
    fn unknown_key_is_fatal() {
        let bad = "[tier.x]\npaths = [\"src\"]\nallow = [\"wall-clock\"]\n";
        assert!(Config::parse(bad).is_err());
    }
}
