//! Content-hash incremental caching for the lint engine.
//!
//! Local-pass results depend only on a file's bytes and the lint
//! configuration, so they are cached per file under
//! `target/tm-lint-cache/cache.v1`: one [`crate::passes::FileFacts`]
//! record keyed by an FNV-1a hash of the file's contents. The header
//! carries a *config fingerprint* — the schema version, the full rule
//! list, and the raw `tm-lint.toml` text — so any change to the linter
//! or its configuration invalidates the whole cache at once rather than
//! mixing generations. The workspace pass (panic-reachability) and
//! directive/stale-allow accounting are recomputed on every run from the
//! cached facts; only lexing, parsing, and the local passes are skipped.
//!
//! The format is a plain line-oriented text file (the workspace bans
//! external serde-style dependencies). Any parse hiccup — truncation,
//! version skew, hand-editing — drops the whole cache and the next run
//! rebuilds it: a cache can only ever cost a warm start, never
//! correctness. Writes go through a temp file + rename so a crashed run
//! never leaves a half-written cache behind.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::passes::{CallFact, DirFact, FileFacts, FnFact, PanicFact, RawDiag};
use crate::rules;

/// Bump when the serialized shape of [`FileFacts`] changes.
const VERSION: &str = "v1";

/// FNV-1a 64-bit: tiny, dependency-free, and plenty for change detection
/// (a collision needs two *different same-path file contents* colliding).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The config fingerprint: schema version + rule list + raw config text.
pub fn config_fingerprint(config_text: &str) -> u64 {
    let mut key = String::new();
    key.push_str(VERSION);
    key.push('\n');
    key.push_str(&rules::rule_names().join(","));
    key.push('\n');
    key.push_str(config_text);
    fnv1a(key.as_bytes())
}

/// The in-memory cache: path -> (content hash, facts).
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileFacts)>,
    fingerprint: u64,
    /// Hits/misses this run, for `TM_LINT_JSON`.
    pub hits: u64,
    /// See `hits`.
    pub misses: u64,
}

impl Cache {
    /// Loads the cache from `dir`, or returns an empty one on any
    /// mismatch (missing file, version/config skew, parse failure).
    pub fn load(dir: &Path, fingerprint: u64) -> Cache {
        let mut cache = Cache {
            fingerprint,
            ..Cache::default()
        };
        let Ok(text) = fs::read_to_string(cache_file(dir)) else {
            return cache;
        };
        if let Some(entries) = parse(&text, fingerprint) {
            cache.entries = entries;
        }
        cache
    }

    /// Looks up `rel` at `hash`, counting the hit or miss.
    pub fn lookup(&mut self, rel: &str, hash: u64) -> Option<FileFacts> {
        match self.entries.get(rel) {
            Some((h, facts)) if *h == hash => {
                self.hits += 1;
                Some(facts.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records fresh facts for `rel`.
    pub fn store(&mut self, rel: &str, hash: u64, facts: FileFacts) {
        self.entries.insert(rel.to_string(), (hash, facts));
    }

    /// Drops entries for files that no longer exist in the scanned set.
    pub fn retain_files(&mut self, live: &[String]) {
        let live: std::collections::BTreeSet<&str> = live.iter().map(String::as_str).collect();
        self.entries.retain(|rel, _| live.contains(rel.as_str()));
    }

    /// Writes the cache atomically (temp file + rename).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        out.push_str(&format!(
            "tm-lint-cache {VERSION} {:016x}\n",
            self.fingerprint
        ));
        for (rel, (hash, facts)) in &self.entries {
            out.push_str(&format!("F {hash:016x} {rel}\n"));
            for d in &facts.raw {
                out.push_str(&format!("R {} {} {}\n", d.rule, d.line, esc(&d.message)));
            }
            for d in &facts.dirs {
                out.push_str(&format!(
                    "D {} {} {} {}\n",
                    d.line,
                    u8::from(d.file_scope),
                    d.rules.join(","),
                    if d.covered.is_empty() {
                        "-".to_string()
                    } else {
                        d.covered
                            .iter()
                            .map(u32::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    },
                ));
            }
            for f in &facts.fns {
                out.push_str(&format!(
                    "N {} {} {} {}\n",
                    f.line,
                    u8::from(f.is_pub),
                    f.impl_ty.as_deref().unwrap_or("-"),
                    f.name,
                ));
                for c in &f.calls {
                    out.push_str(&format!(
                        "C {} {}\n",
                        c.qual.as_deref().unwrap_or("-"),
                        c.name
                    ));
                }
                for p in &f.panics {
                    out.push_str(&format!("P {} {}\n", p.line, esc(&p.detail)));
                }
            }
            out.push_str(".\n");
        }
        let tmp = dir.join(format!("cache.{VERSION}.tmp{}", std::process::id()));
        fs::write(&tmp, out)?;
        fs::rename(&tmp, cache_file(dir))
    }
}

fn cache_file(dir: &Path) -> PathBuf {
    dir.join(format!("cache.{VERSION}"))
}

/// Parses the cache body; `None` on any structural problem.
fn parse(text: &str, fingerprint: u64) -> Option<BTreeMap<String, (u64, FileFacts)>> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut h = header.split(' ');
    if h.next()? != "tm-lint-cache" || h.next()? != VERSION {
        return None;
    }
    if u64::from_str_radix(h.next()?, 16).ok()? != fingerprint {
        return None;
    }

    let mut entries = BTreeMap::new();
    let mut cur: Option<(String, u64, FileFacts)> = None;
    for line in lines {
        let (tag, rest) = line.split_at(line.len().min(2));
        match tag {
            "F " => {
                let (hash, rel) = rest.split_once(' ')?;
                cur = Some((
                    rel.to_string(),
                    u64::from_str_radix(hash, 16).ok()?,
                    FileFacts::default(),
                ));
            }
            "R " => {
                let mut p = rest.splitn(3, ' ');
                let rule = rules::intern(p.next()?)?;
                let line = p.next()?.parse().ok()?;
                let message = unesc(p.next()?);
                cur.as_mut()?.2.raw.push(RawDiag {
                    rule,
                    line,
                    message,
                });
            }
            "D " => {
                let mut p = rest.splitn(4, ' ');
                let line = p.next()?.parse().ok()?;
                let file_scope = p.next()? == "1";
                let dir_rules = p.next()?.split(',').map(str::to_string).collect();
                let covered_field = p.next()?;
                let covered = if covered_field == "-" {
                    Vec::new()
                } else {
                    covered_field
                        .split(',')
                        .map(|c| c.parse().ok())
                        .collect::<Option<Vec<u32>>>()?
                };
                cur.as_mut()?.2.dirs.push(DirFact {
                    line,
                    file_scope,
                    rules: dir_rules,
                    covered,
                });
            }
            "N " => {
                let mut p = rest.splitn(4, ' ');
                let line = p.next()?.parse().ok()?;
                let is_pub = p.next()? == "1";
                let impl_ty = match p.next()? {
                    "-" => None,
                    t => Some(t.to_string()),
                };
                let name = p.next()?.to_string();
                cur.as_mut()?.2.fns.push(FnFact {
                    name,
                    line,
                    impl_ty,
                    is_pub,
                    calls: Vec::new(),
                    panics: Vec::new(),
                });
            }
            "C " => {
                let (qual, name) = rest.split_once(' ')?;
                let qual = (qual != "-").then(|| qual.to_string());
                cur.as_mut()?.2.fns.last_mut()?.calls.push(CallFact {
                    qual,
                    name: name.to_string(),
                });
            }
            "P " => {
                let (line, detail) = rest.split_once(' ')?;
                cur.as_mut()?.2.fns.last_mut()?.panics.push(PanicFact {
                    line: line.parse().ok()?,
                    detail: unesc(detail),
                });
            }
            _ if line == "." => {
                let (rel, hash, facts) = cur.take()?;
                entries.insert(rel, (hash, facts));
            }
            _ => return None,
        }
    }
    // A trailing unterminated record means a truncated file: reject.
    if cur.is_some() {
        return None;
    }
    Some(entries)
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_facts() -> FileFacts {
        FileFacts {
            raw: vec![RawDiag {
                rule: "wall-clock",
                line: 3,
                message: "multi\nline \\ message".to_string(),
            }],
            dirs: vec![DirFact {
                line: 7,
                file_scope: false,
                rules: vec!["threads".to_string(), "wall-clock".to_string()],
                covered: vec![7, 8],
            }],
            fns: vec![FnFact {
                name: "step".to_string(),
                line: 12,
                impl_ty: Some("Simulator".to_string()),
                is_pub: true,
                calls: vec![CallFact {
                    qual: Some("StdRng".to_string()),
                    name: "seed_from_u64".to_string(),
                }],
                panics: vec![PanicFact {
                    line: 14,
                    detail: "`q[…]` unguarded".to_string(),
                }],
            }],
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("tm-lint-cache-test-{}", std::process::id()));
        let fp = config_fingerprint("deny = [\"wall-clock\"]");
        let mut cache = Cache::load(&dir, fp);
        cache.store("crates/x/src/lib.rs", 0xabcd, sample_facts());
        cache.save(&dir).unwrap();

        let mut back = Cache::load(&dir, fp);
        assert_eq!(
            back.lookup("crates/x/src/lib.rs", 0xabcd),
            Some(sample_facts())
        );
        assert_eq!((back.hits, back.misses), (1, 0));
        assert_eq!(back.lookup("crates/x/src/lib.rs", 0x1234), None);
        assert_eq!(back.lookup("other.rs", 0xabcd), None);
        assert_eq!((back.hits, back.misses), (1, 2));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_change_invalidates_everything() {
        let dir = std::env::temp_dir().join(format!("tm-lint-cache-fp-{}", std::process::id()));
        let mut cache = Cache::load(&dir, config_fingerprint("a"));
        cache.store("f.rs", 1, sample_facts());
        cache.save(&dir).unwrap();
        let mut back = Cache::load(&dir, config_fingerprint("b"));
        assert_eq!(back.lookup("f.rs", 1), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_on_disk_is_an_empty_cache() {
        let dir = std::env::temp_dir().join(format!("tm-lint-cache-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("cache.v1"),
            "tm-lint-cache v1 0000000000000000\nF zz",
        )
        .unwrap();
        let mut cache = Cache::load(&dir, 0);
        assert_eq!(cache.lookup("f.rs", 1), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a vectors: changing these means every cache ever
        // written would be silently invalid — fail loudly instead.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
