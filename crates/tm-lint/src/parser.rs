//! Recursive-descent parser: token stream → [`Ast`].
//!
//! Hand-rolled (zero dependencies, per the workspace policy: the linter
//! guards the hermetic build so it is itself hermetic) and deliberately
//! forgiving — the compiler owns syntax errors, so anything this parser
//! does not recognise is skipped token-by-token rather than failing the
//! file. What it *must* get right is structure: where items begin and
//! end (balanced delimiters), which items are behind `#[cfg(test)]`, fn
//! names/parameters/bodies, and `let`-bindings with their initializer
//! extents — that structure is what the flow-aware passes consume.

use std::ops::Range;

use crate::ast::{Ast, Body, ExprInfo, FnDef, ImplDef, Item, ItemKind, LetBind};
use crate::lexer::{Tok, TokKind};

/// Parses a lexed token stream into an item tree. Never fails.
pub fn parse(toks: &[Tok]) -> Ast {
    let mut p = Parser { t: toks, i: 0 };
    Ast {
        items: p.items(false, false),
    }
}

/// Summarises the expression in `range` (identifiers, calls, literal-ness).
/// Exposed so passes can summarise sub-expressions they carve out of a
/// body themselves (e.g. a call argument list).
pub fn summarize_expr(toks: &[Tok], range: Range<usize>) -> ExprInfo {
    let mut info = ExprInfo {
        tokens: range.clone(),
        ..ExprInfo::default()
    };
    let mut saw_ident = false;
    for j in range.clone() {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text.as_str();
        if is_expr_keyword(text) {
            continue;
        }
        saw_ident = true;
        info.idents.push(text.to_string());
        if toks.get(j + 1).map(|n| n.text.as_str()) == Some("(") {
            info.calls.push(text.to_string());
        }
    }
    info.literal_only = !saw_ident;
    info
}

/// Keywords that may appear inside expressions and must not count as
/// data-carrying identifiers (`true`/`false` lex as idents but are
/// literals for taint purposes).
pub(crate) fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "mut"
            | "ref"
            | "move"
            | "if"
            | "else"
            | "match"
            | "loop"
            | "while"
            | "for"
            | "in"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "true"
            | "false"
            | "dyn"
            | "impl"
            | "fn"
            | "where"
            | "unsafe"
            | "await"
    )
}

struct Parser<'a> {
    t: &'a [Tok],
    i: usize,
}

impl<'a> Parser<'a> {
    fn text(&self) -> &str {
        self.t.get(self.i).map_or("", |t| t.text.as_str())
    }

    fn kind(&self) -> Option<TokKind> {
        self.t.get(self.i).map(|t| t.kind)
    }

    fn line(&self) -> u32 {
        self.t.get(self.i).map_or(0, |t| t.line)
    }

    fn at(&self, s: &str) -> bool {
        self.text() == s
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn done(&self) -> bool {
        self.i >= self.t.len()
    }

    /// Item sequence until EOF (or a `}` when `stop_at_close`).
    fn items(&mut self, stop_at_close: bool, cfg_test: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while !self.done() {
            if stop_at_close && self.at("}") {
                break;
            }
            let before = self.i;
            if let Some(item) = self.item(cfg_test) {
                out.push(item);
            }
            if self.i == before {
                self.bump(); // always advance: unknown construct
            }
        }
        out
    }

    /// One item. Returns `None` for constructs that produce no tree node
    /// (stray tokens); the caller guarantees progress.
    fn item(&mut self, inherited_cfg_test: bool) -> Option<Item> {
        let mut cfg_test = inherited_cfg_test;
        while self.at("#") {
            cfg_test |= self.attr();
        }
        let line = self.line();
        let mut is_pub = false;
        if self.at("pub") {
            is_pub = true;
            self.bump();
            if self.at("(") {
                self.balanced("(", ")");
            }
        }
        // Fn qualifiers. `const` is only a qualifier when followed by `fn`;
        // `extern` may introduce a block or a crate import instead.
        loop {
            match self.text() {
                "unsafe" | "async" => self.bump(),
                "default" if self.peek_is(1, "fn") => self.bump(),
                "const" if self.peek_is(1, "fn") => self.bump(),
                "extern" => {
                    self.bump();
                    if self.kind() == Some(TokKind::Literal) {
                        self.bump(); // `extern "C"`
                    }
                    if self.at("{") {
                        self.balanced("{", "}");
                        return Some(Item {
                            kind: ItemKind::Other,
                            line,
                            cfg_test,
                        });
                    }
                    if self.at("crate") {
                        self.skip_to_semi();
                        return Some(Item {
                            kind: ItemKind::Other,
                            line,
                            cfg_test,
                        });
                    }
                }
                _ => break,
            }
        }
        match self.text() {
            "fn" => {
                let def = self.fn_def(is_pub);
                Some(Item {
                    kind: ItemKind::Fn(def),
                    line,
                    cfg_test,
                })
            }
            "mod" => {
                self.bump();
                let name = self.ident_text();
                let items = if self.at("{") {
                    self.bump();
                    let inner = self.items(true, cfg_test);
                    if self.at("}") {
                        self.bump();
                    }
                    inner
                } else {
                    self.skip_to_semi();
                    Vec::new()
                };
                Some(Item {
                    kind: ItemKind::Mod { name, items },
                    line,
                    cfg_test,
                })
            }
            "impl" => {
                let def = self.impl_def(cfg_test);
                Some(Item {
                    kind: ItemKind::Impl(def),
                    line,
                    cfg_test,
                })
            }
            "use" => {
                self.bump();
                let mut path = String::new();
                while !self.done() && !self.at(";") {
                    path.push_str(self.text());
                    self.bump();
                }
                if self.at(";") {
                    self.bump();
                }
                Some(Item {
                    kind: ItemKind::Use { path },
                    line,
                    cfg_test,
                })
            }
            "struct" | "enum" | "union" | "trait" => {
                self.skip_struct_like();
                Some(Item {
                    kind: ItemKind::Other,
                    line,
                    cfg_test,
                })
            }
            "const" | "static" | "type" => {
                self.skip_to_semi();
                Some(Item {
                    kind: ItemKind::Other,
                    line,
                    cfg_test,
                })
            }
            "macro_rules" => {
                self.bump();
                if self.at("!") {
                    self.bump();
                }
                self.ident_text();
                match self.text() {
                    "{" => self.balanced("{", "}"),
                    "(" => {
                        self.balanced("(", ")");
                        self.skip_to_semi();
                    }
                    "[" => {
                        self.balanced("[", "]");
                        self.skip_to_semi();
                    }
                    _ => {}
                }
                Some(Item {
                    kind: ItemKind::Other,
                    line,
                    cfg_test,
                })
            }
            _ => None,
        }
    }

    fn peek_is(&self, ahead: usize, s: &str) -> bool {
        self.t.get(self.i + ahead).map(|t| t.text.as_str()) == Some(s)
    }

    /// Consumes a `#[…]` / `#![…]` attribute; true if it is `cfg(…test…)`.
    fn attr(&mut self) -> bool {
        self.bump(); // '#'
        if self.at("!") {
            self.bump();
        }
        if !self.at("[") {
            return false;
        }
        self.bump();
        let mut depth = 1u32;
        let mut first = true;
        let mut is_cfg = false;
        let mut mentions_test = false;
        while !self.done() && depth > 0 {
            match self.text() {
                "[" => depth += 1,
                "]" => depth -= 1,
                "cfg" | "cfg_attr" if first => is_cfg = true,
                "test" => mentions_test = true,
                _ => {}
            }
            first = false;
            self.bump();
        }
        is_cfg && mentions_test
    }

    fn ident_text(&mut self) -> String {
        if self.kind() == Some(TokKind::Ident) {
            let s = self.text().to_string();
            self.bump();
            s
        } else {
            String::new()
        }
    }

    /// Consumes from the opening delimiter through its balanced close.
    fn balanced(&mut self, open: &str, close: &str) {
        if !self.at(open) {
            return;
        }
        let mut depth = 0u32;
        while !self.done() {
            if self.at(open) {
                depth += 1;
            } else if self.at(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Consumes up to and including the next `;` at delimiter depth 0.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while !self.done() {
            match self.text() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            if depth < 0 {
                return; // stray close: let the caller see it
            }
            self.bump();
        }
    }

    /// struct/enum/union/trait: ends at `;` (unit/tuple struct) or at the
    /// balanced `{…}` body.
    fn skip_struct_like(&mut self) {
        while !self.done() {
            match self.text() {
                "{" => {
                    self.balanced("{", "}");
                    return;
                }
                "(" => {
                    self.balanced("(", ")");
                }
                ";" => {
                    self.bump();
                    return;
                }
                "<" => self.skip_generics(),
                _ => self.bump(),
            }
        }
    }

    /// Consumes a balanced `<…>` generics group, treating the `>` of a
    /// `->` arrow (closure/fn-trait bounds) as part of the arrow.
    fn skip_generics(&mut self) {
        if !self.at("<") {
            return;
        }
        let mut depth = 0i32;
        let mut prev = String::new();
        while !self.done() {
            match self.text() {
                "<" => depth += 1,
                ">" if prev != "-" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                "(" => {
                    self.balanced("(", ")");
                    prev = ")".to_string();
                    continue;
                }
                _ => {}
            }
            prev = self.text().to_string();
            self.bump();
        }
    }

    fn fn_def(&mut self, is_pub: bool) -> FnDef {
        let line = self.line();
        self.bump(); // 'fn'
        let name = self.ident_text();
        if self.at("<") {
            self.skip_generics();
        }
        let mut params = Vec::new();
        if self.at("(") {
            let start = self.i + 1;
            self.balanced("(", ")");
            let end = self.i.saturating_sub(1);
            params = param_names(self.t, start..end);
        }
        // Return type / where clause: scan to the body `{` or a `;`.
        while !self.done() && !self.at("{") && !self.at(";") {
            match self.text() {
                "<" => self.skip_generics(),
                "(" => self.balanced("(", ")"),
                "[" => self.balanced("[", "]"),
                _ => self.bump(),
            }
        }
        let body = if self.at("{") {
            let start = self.i + 1;
            self.balanced("{", "}");
            let end = self.i.saturating_sub(1);
            Some(Body {
                lets: let_bindings(self.t, start..end),
                tokens: start..end,
            })
        } else {
            if self.at(";") {
                self.bump();
            }
            None
        };
        FnDef {
            name,
            is_pub,
            line,
            params,
            body,
        }
    }

    fn impl_def(&mut self, cfg_test: bool) -> ImplDef {
        self.bump(); // 'impl'
        if self.at("<") {
            self.skip_generics();
        }
        // Collect the head up to the body: `Trait for Type` or `Type`.
        let mut pre_for: Vec<String> = Vec::new();
        let mut post_for: Vec<String> = Vec::new();
        let mut seen_for = false;
        while !self.done() && !self.at("{") && !self.at(";") && !self.at("where") {
            if self.at("for") {
                seen_for = true;
                self.bump();
                continue;
            }
            if self.at("<") {
                self.skip_generics();
                continue;
            }
            if self.kind() == Some(TokKind::Ident) {
                let seg = if seen_for {
                    &mut post_for
                } else {
                    &mut pre_for
                };
                seg.push(self.text().to_string());
            }
            self.bump();
        }
        if self.at("where") {
            while !self.done() && !self.at("{") && !self.at(";") {
                match self.text() {
                    "<" => self.skip_generics(),
                    "(" => self.balanced("(", ")"),
                    "[" => self.balanced("[", "]"),
                    _ => self.bump(),
                }
            }
        }
        let (ty_path, trait_path) = if seen_for {
            (post_for, Some(pre_for))
        } else {
            (pre_for, None)
        };
        let ty = ty_path.last().cloned().unwrap_or_default();
        let trait_name = trait_path.and_then(|p| p.last().cloned());
        let mut fns = Vec::new();
        if self.at("{") {
            self.bump();
            while !self.done() && !self.at("}") {
                let before = self.i;
                let mut member_cfg_test = cfg_test;
                while self.at("#") {
                    member_cfg_test |= self.attr();
                }
                let line = self.line();
                let mut is_pub = false;
                if self.at("pub") {
                    is_pub = true;
                    self.bump();
                    if self.at("(") {
                        self.balanced("(", ")");
                    }
                }
                while matches!(self.text(), "unsafe" | "async")
                    || (matches!(self.text(), "const" | "default") && self.peek_is(1, "fn"))
                {
                    self.bump();
                }
                if self.at("fn") {
                    let def = self.fn_def(is_pub);
                    fns.push(Item {
                        kind: ItemKind::Fn(def),
                        line,
                        cfg_test: member_cfg_test,
                    });
                } else if !self.at("}") {
                    self.skip_to_semi();
                }
                if self.i == before {
                    self.bump();
                }
            }
            if self.at("}") {
                self.bump();
            }
        }
        ImplDef {
            ty,
            trait_name,
            fns,
        }
    }
}

/// Pattern identifiers of a parameter list (token range inside the
/// parens). `mut`/`ref` are stripped; enum/struct constructor heads and
/// path qualifiers are not bound names and are excluded.
fn param_names(toks: &[Tok], range: Range<usize>) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_type = false; // between a top-level `:` and the next `,`
    let mut j = range.start;
    while j < range.end {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 0 => in_type = true,
            "," if depth == 0 => in_type = false,
            _ => {}
        }
        if !in_type && t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref") {
            // Constructor heads (`Some(x)`, `Point { .. }`) and path
            // segments (`core::…`) are not bindings.
            let next = toks.get(j + 1).map(|n| n.text.as_str());
            if !matches!(next, Some("(") | Some("{") | Some("::")) {
                out.push(t.text.clone());
            }
        }
        j += 1;
    }
    out
}

/// Extracts `let` bindings (plus `if let` / `while let` scrutinees) from
/// a body token range, shallowly: nested blocks and closures are scanned
/// as part of the same body.
fn let_bindings(toks: &[Tok], range: Range<usize>) -> Vec<LetBind> {
    let mut out = Vec::new();
    let mut j = range.start;
    while j < range.end {
        if toks[j].kind != TokKind::Ident || toks[j].text != "let" {
            j += 1;
            continue;
        }
        let line = toks[j].line;
        let refutable = j > range.start
            && matches!(toks[j - 1].text.as_str(), "if" | "while")
            && toks[j - 1].kind == TokKind::Ident;
        // Pattern: to the binder `=` (or statement end for `let x;`).
        let mut names = Vec::new();
        let mut depth = 0i32;
        let mut in_type = false;
        let mut k = j + 1;
        let mut eq = None;
        while k < range.end {
            let t = &toks[k];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ":" if depth == 0 => in_type = true,
                ";" if depth <= 0 => break,
                "=" if depth == 0 => {
                    let prev = toks[k - 1].text.as_str();
                    let next = toks.get(k + 1).map(|n| n.text.as_str());
                    if prev != "." && prev != "<" && prev != ">" && prev != "!" && next != Some("=")
                    {
                        eq = Some(k);
                        break;
                    }
                }
                _ => {}
            }
            if !in_type
                && t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "mut" | "ref" | "box")
            {
                let next = toks.get(k + 1).map(|n| n.text.as_str());
                if !matches!(next, Some("(") | Some("{") | Some("::")) {
                    names.push(t.text.clone());
                }
            }
            k += 1;
        }
        let Some(eq) = eq else {
            out.push(LetBind {
                names,
                line,
                init: None,
            });
            j = k + 1;
            continue;
        };
        // Initializer: to the `;` at depth 0 — or, for `if let`/`while
        // let`, to the `{` opening the consequent block.
        let start = eq + 1;
        let mut depth = 0i32;
        let mut k = start;
        while k < range.end {
            match toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    if refutable && depth == 0 {
                        break;
                    }
                    depth += 1;
                }
                "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        out.push(LetBind {
            names,
            line,
            init: Some(summarize_expr(toks, start..k)),
        });
        j = k + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ItemKind;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).tokens)
    }

    fn fn_names(ast: &Ast) -> Vec<(String, Option<String>, bool)> {
        let mut out = Vec::new();
        ast.for_each_fn(&mut |def, impl_ty, cfg_test| {
            out.push((def.name.clone(), impl_ty.map(str::to_string), cfg_test));
        });
        out
    }

    #[test]
    fn items_fns_impls_mods_and_uses() {
        let src = r#"
use std::collections::BTreeMap;
pub struct Simulator { x: u32 }
impl Simulator {
    pub fn new(seed: u64) -> Self { Self { x: 0 } }
    fn helper(&self) {}
}
impl core::fmt::Display for Simulator {
    fn fmt(&self, f: &mut Fmt) -> Result { Ok(()) }
}
mod inner {
    pub fn run_inner() {}
}
#[cfg(test)]
mod tests {
    fn test_only() {}
}
fn free(a: u64, (b, c): (u32, u32)) {}
"#;
        let ast = parse_src(src);
        let fns = fn_names(&ast);
        assert_eq!(
            fns,
            vec![
                ("new".into(), Some("Simulator".into()), false),
                ("helper".into(), Some("Simulator".into()), false),
                ("fmt".into(), Some("Simulator".into()), false),
                ("run_inner".into(), None, false),
                ("test_only".into(), None, true),
                ("free".into(), None, false),
            ]
        );
        let uses: Vec<&str> = ast
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Use { path } => Some(path.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(uses, vec!["std::collections::BTreeMap"]);
    }

    #[test]
    fn params_and_lets_are_extracted() {
        let src = r#"
fn build(seed: u64, mut count: usize) {
    let rng = StdRng::seed_from_u64(seed);
    let (a, b) = split(rng);
    let literal = 42;
    if let Some(x) = maybe { use_it(x); }
    let from_block = match kind { A => seed, B => 0 };
}
"#;
        let ast = parse_src(src);
        let mut got = None;
        ast.for_each_fn(&mut |def, _, _| got = Some(def.clone_for_test()));
        let def = got.expect("fn parsed");
        assert_eq!(def.0, vec!["seed", "count"]);
        let lets = def.1;
        assert_eq!(lets.len(), 5);
        assert_eq!(lets[0].0, vec!["rng"]);
        assert!(lets[0].1.contains(&"seed".to_string()));
        assert_eq!(lets[1].0, vec!["a", "b"]);
        assert_eq!(lets[2].0, vec!["literal"]);
        assert!(lets[2].2, "42 is literal-only");
        assert_eq!(lets[3].0, vec!["x"]);
        assert!(lets[3].1.contains(&"maybe".to_string()));
        assert!(
            lets[4].1.contains(&"seed".to_string()),
            "match-arm idents are part of the initializer summary"
        );
    }

    #[test]
    fn generics_arrows_and_where_clauses_do_not_derail() {
        let src = r#"
fn apply<F: Fn(u64) -> u64>(f: F) -> u64 where F: Copy { f(1) }
impl<T: Ord> Wheel<T> where T: Copy { fn push(&mut self, x: T) {} }
pub const fn c() -> usize { 4 }
"#;
        let fns = fn_names(&parse_src(src));
        assert_eq!(fns.len(), 3, "{fns:?}");
        assert_eq!(fns[0].0, "apply");
        assert_eq!(fns[1], ("push".into(), Some("Wheel".into()), false));
        assert_eq!(fns[2].0, "c");
    }

    #[test]
    fn cfg_test_attr_on_fn_and_mod_is_inherited() {
        let src = "#[cfg(test)]\nfn gated() {}\nmod m { #[cfg(all(test, feature = \"x\"))] fn also() {} fn not() {} }";
        let fns = fn_names(&parse_src(src));
        assert_eq!(
            fns,
            vec![
                ("gated".into(), None, true),
                ("also".into(), None, true),
                ("not".into(), None, false),
            ]
        );
    }

    impl FnDef {
        /// Test helper: (params, per-let (names, init idents, literal_only)).
        #[allow(clippy::type_complexity)]
        fn clone_for_test(&self) -> (Vec<String>, Vec<(Vec<String>, Vec<String>, bool)>) {
            let lets = self
                .body
                .as_ref()
                .map(|b| {
                    b.lets
                        .iter()
                        .map(|l| {
                            (
                                l.names.clone(),
                                l.init
                                    .as_ref()
                                    .map(|i| i.idents.clone())
                                    .unwrap_or_default(),
                                l.init.as_ref().map(|i| i.literal_only).unwrap_or(false),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            (self.params.clone(), lets)
        }
    }
}
