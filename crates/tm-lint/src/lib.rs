//! # tm-lint — the workspace determinism linter
//!
//! Every result this workspace reproduces depends on the simulation being
//! a pure function of `(scenario, seed)`. This crate enforces that
//! contract statically: a hand-rolled Rust lexer (no syn, no proc-macro —
//! the linter guards the hermetic build so it is itself hermetic) feeds a
//! rule engine that walks every crate and denies, per tier:
//!
//! * **wall-clock** — `Instant` / `SystemTime` outside the bench &
//!   telemetry wall-span allowlist;
//! * **unordered-collections** — `HashMap` / `HashSet` in sim-visible
//!   state (hash iteration order is seed- and layout-dependent);
//! * **unseeded-rng** — any entropy not forked from the seeded `tm-rand`
//!   root;
//! * **threads** — threads, channels and locks in sim crates;
//! * **float-ordering** — `partial_cmp` in event-ordering paths;
//! * **unwrap-in-lib** — `.unwrap()` / `.expect()` on scenario-reachable
//!   paths in library code.
//!
//! Tiers and their rule sets live in `tm-lint.toml` at the workspace
//! root. Exceptions are only possible inline —
//! `// tm-lint: allow(<rule>) -- <reason>` — so every one is written down
//! and greppable. The same contract is checked dynamically by the
//! `debug_assertions` invariants in `netsim::engine`; see DESIGN.md
//! §"Determinism contract".

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use rules::{Diagnostic, FileReport};

/// Directory names never scanned: test/bench/example code is exempt from
/// the contract (it is not sim-visible state), and fixtures are lint food.
const SKIP_DIRS: &[&str] = &[".git", "target", "tests", "examples", "benches", "fixtures"];

/// Aggregated result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files: u64,
    /// All surviving diagnostics, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressed-diagnostic counts per rule.
    pub allowed: BTreeMap<&'static str, u64>,
}

impl Report {
    fn absorb(&mut self, file: FileReport) {
        self.files += 1;
        self.diagnostics.extend(file.diagnostics);
        for (rule, n) in file.allowed {
            *self.allowed.entry(rule).or_default() += n;
        }
    }

    /// Total suppression count.
    pub fn allowed_total(&self) -> u64 {
        self.allowed.values().sum()
    }

    /// The machine-readable summary line (`TM_LINT_JSON {...}`), the same
    /// convention as the bench harness's `BENCH_JSON` records so future
    /// tooling can track rule counts over time. Keys are sorted; the
    /// schema always lists every rule.
    pub fn summary_json(&self) -> String {
        let mut denied: BTreeMap<&str, u64> = BTreeMap::new();
        for d in &self.diagnostics {
            *denied.entry(d.rule).or_default() += 1;
        }
        let rules = rules::rule_names()
            .iter()
            .map(|rule| {
                format!(
                    "\"{rule}\":{{\"allowed\":{},\"denied\":{}}}",
                    self.allowed.get(rule).copied().unwrap_or(0),
                    denied.get(rule).copied().unwrap_or(0),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "TM_LINT_JSON {{\"allowed\":{},\"diagnostics\":{},\"files\":{},\"rules\":{{{rules}}}}}",
            self.allowed_total(),
            self.diagnostics.len(),
            self.files,
        )
    }
}

/// Lints the whole workspace rooted at `root` (which must contain
/// `tm-lint.toml`). Files not covered by any tier are themselves
/// diagnostics: the tier map stays total as crates are added.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join("tm-lint.toml");
    let text = fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&text)?;

    let mut files = Vec::new();
    walk(root, &mut files).map_err(|e| format!("walk failed: {e}"))?;
    files.sort();

    let mut report = Report::default();
    for file in files {
        let rel = rel_path(root, &file);
        let Some((_tier, tier)) = cfg.tier_for(&rel) else {
            report.files += 1;
            report.diagnostics.push(Diagnostic {
                path: rel.clone(),
                line: 1,
                rule: "bad-directive",
                message: "file is not covered by any tier in tm-lint.toml; add it to the tier map"
                    .to_string(),
            });
            continue;
        };
        let deny = tier.deny.clone();
        report.absorb(lint_file(&file, &rel, &deny)?);
    }
    Ok(report)
}

/// Lints explicit files with every rule denied (sim-core strictness).
/// Used by `tm-lint <file>…` and the fixture tests.
pub fn lint_files_strict(root: &Path, files: &[PathBuf]) -> Result<Report, String> {
    let deny: Vec<String> = rules::rule_names()
        .iter()
        .filter(|r| **r != "bad-directive")
        .map(|s| s.to_string())
        .collect();
    let mut report = Report::default();
    for file in files {
        let rel = rel_path(root, file);
        report.absorb(lint_file(file, &rel, &deny)?);
    }
    Ok(report)
}

fn lint_file(path: &Path, rel: &str, deny: &[String]) -> Result<FileReport, String> {
    let src =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(rules::check(rel, &lexer::lex(&src), deny))
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
