//! # tm-lint — the workspace determinism linter
//!
//! Every result this workspace reproduces depends on the simulation being
//! a pure function of `(scenario, seed)`. This crate enforces that
//! contract statically with a multi-pass analysis framework — a
//! hand-rolled lexer, a recursive-descent item parser, and a workspace
//! symbol index (no syn, no proc-macro: the linter guards the hermetic
//! build so it is itself hermetic). Passes, in two scopes:
//!
//! **Local (token) rules** — single-site pattern matches:
//!
//! * **wall-clock** — `Instant` / `SystemTime` outside the bench &
//!   telemetry wall-span allowlist;
//! * **unordered-collections** — `HashMap` / `HashSet` in sim-visible
//!   state (hash iteration order is seed- and layout-dependent);
//! * **unseeded-rng** — any entropy not forked from the seeded `tm-rand`
//!   root;
//! * **threads** — threads, channels and locks in sim crates;
//! * **float-ordering** — `partial_cmp` in event-ordering paths;
//! * **unwrap-in-lib** — `.unwrap()` / `.expect()` in library code.
//!
//! **Flow-aware passes** — built on the item tree and symbol index:
//!
//! * **seed-taint** — every RNG construction must be data-flow-reachable
//!   from a scenario seed via `fork`/`stream`/`stream_seed` chains;
//! * **panic-reachability** — unguarded indexing, division, and
//!   narrowing casts in code reachable from the scenario entry set;
//! * **telemetry-names** — metric names must live in registered
//!   namespaces;
//! * **stale-allow** — an allow directive that suppresses nothing is
//!   itself an error (suppressions only ratchet down).
//!
//! Tiers and their rule sets live in `tm-lint.toml` at the workspace
//! root. Exceptions are only possible inline —
//! `// tm-lint: allow(<rule>) -- <reason>` — so every one is written down
//! and greppable. Local-pass results are cached per content hash under
//! `target/tm-lint-cache` (see [`cache`]); the same contract is checked
//! dynamically by the `debug_assertions` invariants in `netsim::engine` —
//! see DESIGN.md §"Determinism contract".

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

pub mod ast;
pub mod cache;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod rules;
pub mod timing;

pub use config::Config;
pub use rules::{Diagnostic, FileReport};

use passes::{AnalyzedFile, FileFacts, RawDiag, Workspace};
use timing::Stopwatch;

/// Directory names never scanned: test/bench/example code is exempt from
/// the contract (it is not sim-visible state), and fixtures are lint food.
const SKIP_DIRS: &[&str] = &[".git", "target", "tests", "examples", "benches", "fixtures"];

/// Aggregated result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files: u64,
    /// All surviving diagnostics, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressed-diagnostic counts per rule.
    pub allowed: BTreeMap<&'static str, u64>,
    /// Cache hits this run (0 when caching is off).
    pub cache_hits: u64,
    /// Cache misses this run (= files analyzed from source).
    pub cache_misses: u64,
    /// Wall time per pass, microseconds (`parse` covers lex+parse+fact
    /// extraction).
    pub pass_wall_us: BTreeMap<&'static str, u64>,
    /// Total wall time of the lint run, milliseconds.
    pub wall_ms: u64,
}

impl Report {
    fn absorb(&mut self, file: FileReport) {
        self.diagnostics.extend(file.diagnostics);
        for (rule, n) in file.allowed {
            *self.allowed.entry(rule).or_default() += n;
        }
    }

    /// Total suppression count.
    pub fn allowed_total(&self) -> u64 {
        self.allowed.values().sum()
    }

    /// The machine-readable summary line (`TM_LINT_JSON {...}`), the same
    /// convention as the bench harness's `BENCH_JSON` records so future
    /// tooling can track rule counts over time. Keys are sorted; the
    /// schema always lists every rule and every pass.
    pub fn summary_json(&self) -> String {
        let mut denied: BTreeMap<&str, u64> = BTreeMap::new();
        for d in &self.diagnostics {
            *denied.entry(d.rule).or_default() += 1;
        }
        let rules_json = rules::rule_names()
            .iter()
            .map(|rule| {
                format!(
                    "\"{rule}\":{{\"allowed\":{},\"denied\":{}}}",
                    self.allowed.get(rule).copied().unwrap_or(0),
                    denied.get(rule).copied().unwrap_or(0),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let passes_json = passes::all_passes()
            .iter()
            .map(|p| {
                let denied: u64 = p
                    .rules()
                    .iter()
                    .map(|r| denied.get(r).copied().unwrap_or(0))
                    .sum();
                format!(
                    "\"{}\":{{\"denied\":{denied},\"wall_us\":{}}}",
                    p.name(),
                    self.pass_wall_us.get(p.name()).copied().unwrap_or(0),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "TM_LINT_JSON {{\"allowed\":{},\"cache\":{{\"hits\":{},\"misses\":{}}},\"diagnostics\":{},\"files\":{},\"passes\":{{{passes_json}}},\"rules\":{{{rules_json}}},\"wall_ms\":{}}}",
            self.allowed_total(),
            self.cache_hits,
            self.cache_misses,
            self.diagnostics.len(),
            self.files,
            self.wall_ms,
        )
    }
}

/// Analyzes one file from source: lex, parse, extract fn facts, vet
/// directives, and run every local pass (keeping only `deny`-listed
/// rules). The result is the cacheable [`FileFacts`].
fn analyze_source(
    rel: &str,
    src: &str,
    deny: &BTreeSet<&str>,
    timers: &mut BTreeMap<&'static str, u64>,
) -> FileFacts {
    let sw = Stopwatch::start();
    let lexed = lexer::lex(src);
    let ast = parser::parse(&lexed.tokens);
    let fns = passes::panic_reach::extract_fns(&lexed, &ast);
    *timers.entry("parse").or_default() += sw.elapsed_us();

    let mut facts = FileFacts {
        raw: Vec::new(),
        dirs: Vec::new(),
        fns,
    };

    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    for d in &lexed.directives {
        match rules::vet_directive(d) {
            Err(problem) => facts.raw.push(RawDiag {
                rule: "bad-directive",
                line: d.line,
                message: problem,
            }),
            Ok(()) => facts.dirs.push(passes::DirFact {
                line: d.line,
                file_scope: d.file_scope,
                rules: d.rules.clone(),
                covered: if d.file_scope {
                    Vec::new()
                } else if token_lines.contains(&d.line) {
                    vec![d.line]
                } else {
                    vec![d.line, d.line + 1]
                },
            }),
        }
    }

    let unit = AnalyzedFile {
        rel,
        lexed: Some(&lexed),
        ast: Some(&ast),
        fns: &facts.fns,
    };
    let ws = Workspace::empty();
    for pass in passes::all_passes() {
        if pass.needs_workspace() {
            continue;
        }
        let sw = Stopwatch::start();
        for d in pass.run(&unit, &ws) {
            if deny.contains(d.rule) {
                facts.raw.push(RawDiag {
                    rule: d.rule,
                    line: d.line,
                    message: d.message,
                });
            }
        }
        *timers.entry(pass.name()).or_default() += sw.elapsed_us();
    }
    facts
}

/// Runs the workspace passes for one file's facts and assembles its final
/// report (allow accounting + stale-allow ratchet).
fn finish_file(
    rel: &str,
    facts: &FileFacts,
    deny: &BTreeSet<&str>,
    ws: &Workspace,
    timers: &mut BTreeMap<&'static str, u64>,
) -> FileReport {
    let unit = AnalyzedFile {
        rel,
        lexed: None,
        ast: None,
        fns: &facts.fns,
    };
    let mut ws_diags = Vec::new();
    for pass in passes::all_passes() {
        if !pass.needs_workspace() {
            continue;
        }
        let sw = Stopwatch::start();
        ws_diags.extend(
            pass.run(&unit, ws)
                .into_iter()
                .filter(|d| deny.contains(d.rule)),
        );
        *timers.entry(pass.name()).or_default() += sw.elapsed_us();
    }
    rules::assemble(rel, facts, ws_diags)
}

/// Lints one source string with an explicit deny set — the single-file
/// entry point used by unit tests. The workspace index covers just this
/// file.
pub fn check_source(rel: &str, src: &str, deny: &BTreeSet<&str>) -> FileReport {
    let mut timers = BTreeMap::new();
    let facts = analyze_source(rel, src, deny, &mut timers);
    let ws = Workspace::build(&[(rel.to_string(), &facts)]);
    finish_file(rel, &facts, deny, &ws, &mut timers)
}

/// Lints the whole workspace rooted at `root` (which must contain
/// `tm-lint.toml`), without caching.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    lint_workspace_with(root, None)
}

/// Lints the whole workspace, optionally with the incremental cache at
/// `cache_dir` (conventionally `target/tm-lint-cache`). Files not covered
/// by any tier are themselves diagnostics: the tier map stays total as
/// crates are added.
pub fn lint_workspace_with(root: &Path, cache_dir: Option<&Path>) -> Result<Report, String> {
    let total = Stopwatch::start();
    let cfg_path = root.join("tm-lint.toml");
    let text = fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&text)?;

    let mut files = Vec::new();
    walk(root, &mut files).map_err(|e| format!("walk failed: {e}"))?;
    files.sort();

    let fingerprint = cache::config_fingerprint(&text);
    let mut cache = cache_dir
        .map(|d| cache::Cache::load(d, fingerprint))
        .unwrap_or_default();

    let mut report = Report::default();
    let mut timers: BTreeMap<&'static str, u64> = BTreeMap::new();
    // (rel, facts, deny set) for every tier-covered file.
    let mut analyzed: Vec<(String, FileFacts, BTreeSet<&str>)> = Vec::new();
    for file in files {
        let rel = rel_path(root, &file);
        report.files += 1;
        let Some((_tier, tier)) = cfg.tier_for(&rel) else {
            report.diagnostics.push(Diagnostic {
                path: rel.clone(),
                line: 1,
                rule: "bad-directive",
                message: "file is not covered by any tier in tm-lint.toml; add it to the tier map"
                    .to_string(),
            });
            continue;
        };
        let deny: BTreeSet<&str> = tier.deny.iter().map(String::as_str).collect();
        let src = fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let hash = cache::fnv1a(src.as_bytes());
        let facts = match cache.lookup(&rel, hash) {
            Some(facts) => facts,
            None => {
                let facts = analyze_source(&rel, &src, &deny, &mut timers);
                cache.store(&rel, hash, facts.clone());
                facts
            }
        };
        analyzed.push((rel, facts, deny));
    }

    let sw = Stopwatch::start();
    let index: Vec<(String, &FileFacts)> = analyzed
        .iter()
        .map(|(rel, facts, _)| (rel.clone(), facts))
        .collect();
    let ws = Workspace::build(&index);
    *timers.entry("panic-reachability").or_default() += sw.elapsed_us();

    for (rel, facts, deny) in &analyzed {
        report.absorb(finish_file(rel, facts, deny, &ws, &mut timers));
    }

    if let Some(dir) = cache_dir {
        let live: Vec<String> = analyzed.iter().map(|(rel, ..)| rel.clone()).collect();
        cache.retain_files(&live);
        // A failed cache write only costs the next run a warm start.
        cache.save(dir).ok();
    }

    report.cache_hits = cache.hits;
    report.cache_misses = cache.misses;
    report.pass_wall_us = timers;
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report.wall_ms = total.elapsed_ms();
    Ok(report)
}

/// Lints explicit files with every non-meta rule denied (sim-core
/// strictness). Used by `tm-lint <file>…` and the fixture tests.
pub fn lint_files_strict(root: &Path, files: &[PathBuf]) -> Result<Report, String> {
    let deny: BTreeSet<&str> = rules::rule_names()
        .iter()
        .copied()
        .filter(|r| !rules::meta_rules().contains(r))
        .collect();
    let mut report = Report::default();
    let mut timers = BTreeMap::new();
    let mut analyzed: Vec<(String, FileFacts)> = Vec::new();
    for file in files {
        let rel = rel_path(root, file);
        let src =
            fs::read_to_string(file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        report.files += 1;
        report.cache_misses += 1;
        let facts = analyze_source(&rel, &src, &deny, &mut timers);
        analyzed.push((rel, facts));
    }
    let index: Vec<(String, &FileFacts)> = analyzed
        .iter()
        .map(|(rel, facts)| (rel.clone(), facts))
        .collect();
    let ws = Workspace::build(&index);
    for (rel, facts) in &analyzed {
        report.absorb(finish_file(rel, facts, &deny, &ws, &mut timers));
    }
    report.pass_wall_us = timers;
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
