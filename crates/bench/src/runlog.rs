//! The compact binary run-log: every raw campaign run, on disk, in a
//! self-describing append-only format — the artifact that makes
//! warehouse-scale campaigns auditable and re-aggregatable without
//! re-simulating anything.
//!
//! Layout (all little-endian, via [`tm_campaign::codec`], zero external
//! dependencies):
//!
//! ```text
//! magic "TMRLOG01"
//! header: scenario, description, base_seed, seeds, confidence,
//!         shard index/count, axes (name + values each)
//! records: repeated [u64 length][payload]
//! payload: k (global run index), seed, status tag (0 = ok, 1 = failed),
//!          then metrics (name + f64 bits each) or the failure cause
//! ```
//!
//! The header carries the **axes**, not just the scenario name, so a
//! replay ([`merge`] + [`tm_campaign::aggregate_stream`]) reconstructs
//! the grid with [`tm_campaign::grid_of`] — no scenario registry, and no
//! run functions, anywhere in the loop. Floats are stored as IEEE-754
//! bit patterns, so a replayed report renders **byte-identically** to
//! the live campaign that wrote the log.
//!
//! Records are length-prefixed and appended one `write` per run by the
//! [`Writer`] sink, so a killed campaign leaves a log whose complete
//! prefix-of-records is intact; [`read`] stops cleanly at a damaged tail
//! and flags it. Shard logs [`merge`] by global run index; duplicate or
//! incomplete coverage is an error naming the offending cell, never a
//! silently wrong aggregate.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use tm_campaign::codec::{put_f64, put_str, put_u32, put_u64, Cursor};
use tm_campaign::{
    grid_of, Axis, CampaignMeta, CampaignSpec, GridPoint, Metrics, RunRecord, RunSink, RunStatus,
    Scenario, Shard,
};

/// File magic + format version. Bump on any layout change.
const MAGIC: &[u8; 8] = b"TMRLOG01";

/// The self-describing run-log header: enough to re-aggregate the
/// records without the scenario registry.
#[derive(Clone, Debug, PartialEq)]
pub struct RunLogHeader {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description (carried into replayed reports).
    pub description: String,
    /// The campaign's base seed.
    pub base_seed: u64,
    /// Seeds per cell.
    pub seeds: usize,
    /// Confidence level for replayed intervals.
    pub confidence: f64,
    /// The shard that wrote this log.
    pub shard: Shard,
    /// The scenario's parameter axes — the grid, reconstructible via
    /// [`tm_campaign::grid_of`].
    pub axes: Vec<Axis>,
}

impl RunLogHeader {
    /// The header for a spec over the given scenario.
    pub fn for_spec(scenario: &Scenario, spec: &CampaignSpec) -> RunLogHeader {
        RunLogHeader {
            scenario: scenario.name.clone(),
            description: scenario.description.clone(),
            base_seed: spec.base_seed,
            seeds: spec.seeds,
            confidence: spec.confidence,
            shard: spec.shard,
            axes: scenario.axes.clone(),
        }
    }

    /// The canonical grid described by the stored axes.
    pub fn grid(&self) -> Vec<GridPoint> {
        grid_of(&self.axes)
    }

    /// The aggregation meta block for this log's stream.
    pub fn meta(&self) -> CampaignMeta {
        CampaignMeta {
            scenario: self.scenario.clone(),
            description: self.description.clone(),
            base_seed: self.base_seed,
            seeds: self.seeds,
            confidence: self.confidence,
            shard: self.shard,
        }
    }

    /// Whether two headers describe the same campaign, shard aside —
    /// the mergeability test. Confidence is compared bit-exactly.
    pub fn same_campaign(&self, other: &RunLogHeader) -> bool {
        self.scenario == other.scenario
            && self.description == other.description
            && self.base_seed == other.base_seed
            && self.seeds == other.seeds
            && self.confidence.to_bits() == other.confidence.to_bits()
            && self.axes == other.axes
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_str(&mut buf, &self.scenario);
        put_str(&mut buf, &self.description);
        put_u64(&mut buf, self.base_seed);
        put_u64(&mut buf, self.seeds as u64);
        put_f64(&mut buf, self.confidence);
        put_u32(&mut buf, self.shard.index);
        put_u32(&mut buf, self.shard.count);
        put_u32(&mut buf, self.axes.len() as u32);
        for axis in &self.axes {
            put_str(&mut buf, &axis.name);
            put_u32(&mut buf, axis.values.len() as u32);
            for value in &axis.values {
                put_str(&mut buf, value);
            }
        }
        buf
    }

    fn decode(cursor: &mut Cursor<'_>) -> Option<RunLogHeader> {
        if cursor.bytes(MAGIC.len())? != MAGIC {
            return None;
        }
        let scenario = cursor.str()?;
        let description = cursor.str()?;
        let base_seed = cursor.u64()?;
        let seeds = cursor.len()?;
        let confidence = cursor.f64()?;
        let shard = Shard {
            index: cursor.u32()?,
            count: cursor.u32()?,
        };
        let n_axes = cursor.u32()?;
        let mut axes = Vec::with_capacity(n_axes as usize);
        for _ in 0..n_axes {
            let name = cursor.str()?;
            let n_values = cursor.u32()?;
            let mut values = Vec::with_capacity(n_values as usize);
            for _ in 0..n_values {
                values.push(cursor.str()?);
            }
            axes.push(Axis { name, values });
        }
        Some(RunLogHeader {
            scenario,
            description,
            base_seed,
            seeds,
            confidence,
            shard,
            axes,
        })
    }
}

/// Encodes one run as a length-prefixed record.
pub fn encode_record(seeds: usize, record: &RunRecord) -> Vec<u8> {
    let mut body = Vec::new();
    let k = record.cell * seeds + record.seed_index;
    put_u64(&mut body, k as u64);
    put_u64(&mut body, record.seed);
    match &record.status {
        RunStatus::Ok(metrics) => {
            body.push(0);
            put_u32(&mut body, metrics.entries().len() as u32);
            for (name, value) in metrics.entries() {
                put_str(&mut body, name);
                put_f64(&mut body, *value);
            }
        }
        RunStatus::Failed(cause) => {
            body.push(1);
            put_str(&mut body, cause);
        }
    }
    let mut buf = Vec::new();
    put_u64(&mut buf, body.len() as u64);
    buf.extend_from_slice(&body);
    buf
}

fn decode_record(cursor: &mut Cursor<'_>, seeds: usize) -> Option<RunRecord> {
    let len = cursor.len()?;
    let body = cursor.bytes(len)?;
    let mut body = Cursor::new(body);
    let k = body.len()?;
    let seed = body.u64()?;
    let tag = *body.bytes(1)?.first()?;
    let status = match tag {
        0 => {
            let n = body.u32()?;
            let mut metrics = Metrics::new();
            for _ in 0..n {
                let name = body.str()?;
                let value = body.f64()?;
                metrics.push(&name, value);
            }
            RunStatus::Ok(metrics)
        }
        1 => RunStatus::Failed(body.str()?),
        _ => return None,
    };
    if !body.is_empty() || seeds == 0 {
        return None;
    }
    Some(RunRecord {
        cell: k / seeds,
        seed_index: k % seeds,
        seed,
        status,
    })
}

/// A run-log read back from disk.
#[derive(Clone, Debug)]
pub struct RunLog {
    /// The header the file carried.
    pub header: RunLogHeader,
    /// The complete records, in file order.
    pub records: Vec<RunRecord>,
    /// Whether a damaged tail was dropped (partial final write).
    pub truncated: bool,
}

/// Reads a run-log, tolerating a damaged record tail (the records before
/// it are returned, `truncated` set). A missing file or unreadable
/// header is an error — a log you explicitly name must exist.
pub fn read(path: &Path) -> Result<RunLog, String> {
    let data = fs::read(path).map_err(|e| format!("run-log {}: {e}", path.display()))?;
    let mut cursor = Cursor::new(&data);
    let header = RunLogHeader::decode(&mut cursor)
        .ok_or_else(|| format!("run-log {}: not a TMRLOG01 file", path.display()))?;
    let mut records = Vec::new();
    let mut truncated = false;
    while !cursor.is_empty() {
        match decode_record(&mut cursor, header.seeds) {
            Some(record) => records.push(record),
            None => {
                truncated = true;
                break;
            }
        }
    }
    Ok(RunLog {
        header,
        records,
        truncated,
    })
}

/// The cells for which `log` holds a complete, consistent run set:
/// exactly one record per seed index. Returned as cell → seed-ordered
/// records. Cells with missing or duplicate records are excluded — the
/// resume path re-runs them rather than trusting ambiguous state.
pub fn complete_cells(log: &RunLog) -> BTreeMap<usize, Vec<RunRecord>> {
    let mut by_cell: BTreeMap<usize, BTreeMap<usize, RunRecord>> = BTreeMap::new();
    let mut poisoned: Vec<usize> = Vec::new();
    for record in &log.records {
        let cell = by_cell.entry(record.cell).or_default();
        if cell.insert(record.seed_index, record.clone()).is_some() {
            poisoned.push(record.cell);
        }
    }
    by_cell
        .into_iter()
        .filter(|(cell, seeds)| {
            !poisoned.contains(cell)
                && seeds.len() == log.header.seeds
                && seeds.keys().copied().eq(0..log.header.seeds)
        })
        .map(|(cell, seeds)| (cell, seeds.into_values().collect()))
        .collect()
}

/// Merges shard logs into one canonical stream.
///
/// All headers must describe the same campaign (shard aside). The merged
/// records are sorted by global run index; a duplicate run or a cell
/// with incomplete coverage is an error naming it. The returned header
/// carries `Shard::full()` when the merge covers the whole grid (the
/// merged stream *is* the unsharded campaign); a partial replay keeps
/// the first log's shard label.
pub fn merge(logs: &[RunLog]) -> Result<(RunLogHeader, Vec<RunRecord>), String> {
    let first = logs
        .first()
        .ok_or_else(|| "no run-logs to merge".to_string())?;
    for log in &logs[1..] {
        if !first.header.same_campaign(&log.header) {
            return Err(format!(
                "run-logs disagree: `{}` (base seed {:#x}, {} seeds) vs `{}` (base seed {:#x}, {} seeds)",
                first.header.scenario,
                first.header.base_seed,
                first.header.seeds,
                log.header.scenario,
                log.header.base_seed,
                log.header.seeds,
            ));
        }
    }
    let seeds = first.header.seeds;
    if seeds == 0 {
        return Err("run-log header has zero seeds per cell".to_string());
    }
    let mut by_k: BTreeMap<usize, RunRecord> = BTreeMap::new();
    for log in logs {
        for record in &log.records {
            let k = record.cell * seeds + record.seed_index;
            if by_k.insert(k, record.clone()).is_some() {
                return Err(format!(
                    "duplicate run for cell {} seed-index {} across the merged logs",
                    record.cell, record.seed_index
                ));
            }
        }
    }
    // Every covered cell must be complete; a gap means a shard's log is
    // missing or was cut short.
    let cells: Vec<usize> = by_k.keys().map(|k| k / seeds).collect();
    for &cell in &cells {
        let have = cells.iter().filter(|&&c| c == cell).count();
        if have != seeds {
            return Err(format!(
                "cell {cell} has {have} of {seeds} runs across the merged logs \
                 (missing shard or truncated log?)"
            ));
        }
    }
    let mut header = first.header.clone();
    let covered: std::collections::BTreeSet<usize> = by_k.keys().map(|k| k / seeds).collect();
    // A complete merge is the unsharded campaign; a partial replay (one
    // shard's log on its own) keeps that shard's label so the rendered
    // header cannot be mistaken for the merged result.
    header.shard = if covered.len() == grid_of(&header.axes).len() {
        Shard::full()
    } else {
        first.header.shard
    };
    Ok((header, by_k.into_values().collect()))
}

/// A [`RunSink`] that appends every run to the log as it is emitted.
///
/// [`Writer::create`] rewrites the whole file atomically (header + any
/// records carried over from a resumed invocation, via a sibling `.tmp`
/// and `rename`), then holds the file open in append mode; each
/// subsequent run is one appended record.
pub struct Writer {
    file: fs::File,
    seeds: usize,
    bytes: u64,
}

impl Writer {
    /// Creates (or atomically replaces) the log at `path` with `header`
    /// and the carried-over `keep` records, returning an append handle.
    pub fn create(
        path: &Path,
        header: &RunLogHeader,
        keep: &[RunRecord],
    ) -> Result<Writer, String> {
        let mut buf = header.encode();
        for record in keep {
            buf.extend_from_slice(&encode_record(header.seeds, record));
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, &buf).map_err(|e| format!("run-log write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, path).map_err(|e| {
            format!(
                "run-log rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            )
        })?;
        let file = fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("run-log open {}: {e}", path.display()))?;
        Ok(Writer {
            file,
            seeds: header.seeds,
            bytes: buf.len() as u64,
        })
    }

    /// Bytes written so far (header + records).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl RunSink for Writer {
    fn on_run(&mut self, record: &RunRecord) -> Result<(), String> {
        let buf = encode_record(self.seeds, record);
        self.file
            .write_all(&buf)
            .map_err(|e| format!("run-log append: {e}"))?;
        self.bytes += buf.len() as u64;
        Ok(())
    }
}
