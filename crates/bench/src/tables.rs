//! Table reproductions.

// tm-lint: allow-file(wall-clock) -- table timings report real elapsed wall time (TopoGuard+ overhead column); never sim-visible
use std::time::Instant;

use attacks::ProbeKind;
use controller::{ControllerConfig, ControllerProfile, SdnController};
use netsim::{LinkProfile, NetworkSpec, Simulator};
use sdn_types::crypto::Key;
use sdn_types::packet::{EthernetFrame, LldpPacket, Payload};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime};
use tm_rand::StdRng;
use tm_stats::Summary;

/// Table I: liveness probe timing and stealth. 1000 scans per technique;
/// timings exclude attacker↔victim RTT, exactly as in the paper.
pub fn table1(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = [
        ProbeKind::IcmpPing,
        ProbeKind::TcpSyn { port: 80 },
        ProbeKind::ArpPing,
        ProbeKind::IdleScan {
            zombie: IpAddr::new(10, 0, 0, 9),
            port: 80,
        },
    ];
    let mut out =
        String::from("TABLE I: Liveness Probe Options (1000 scans per type, RTT excluded)\n\n");
    out.push_str(&format!(
        "{:<15} {:<10} {:<16} {:<18} {}\n",
        "Type", "Stealth", "Requirements", "Timing (ms)", "paper"
    ));
    let paper = ["0.91 ± 0.04", "492.3 ± 1.4", "133.5 ± 1.6", "1.8 ± 0.1"];
    for (kind, paper) in kinds.iter().zip(paper) {
        let samples: Vec<f64> = (0..1000)
            .map(|_| kind.sample_overhead(&mut rng).as_millis_f64())
            .collect();
        let s = Summary::of(&samples);
        let t = kind.timing();
        out.push_str(&format!(
            "{:<15} {:<10} {:<16} {:<18} {}\n",
            kind.name(),
            format!("{:?}", t.stealth),
            t.requirement,
            s.mean_pm_sd(2),
            paper,
        ));
    }
    out
}

/// Table II: TOPOGUARD+'s implementation overhead on the LLDP path,
/// measured as wall-clock time of this reproduction's code (Criterion
/// benches in `benches/lldp.rs` give the rigorous version).
///
/// The paper reports +0.134 ms (construction) and +0.299 ms (processing)
/// for its Java/Floodlight prototype; the comparison point is the *shape* —
/// sub-millisecond, negligible, and confined to the control plane.
pub fn table2() -> String {
    const N: u32 = 20_000;
    let key = Key::from_seed(42);
    let dpid = DatapathId::new(7);
    let port = PortNo::new(3);

    // Construction: plain vs signed + timestamped.
    let plain_construct = time_per_iter(N, || {
        let lldp = LldpPacket::new(dpid, port);
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::LLDP_MULTICAST,
            Payload::Lldp(lldp),
        )
        .encode()
    });
    let tgp_construct = time_per_iter(N, || {
        let lldp = LldpPacket::new(dpid, port)
            .with_timestamp(key, SimTime::from_millis(123))
            .signed(key);
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::LLDP_MULTICAST,
            Payload::Lldp(lldp),
        )
        .encode()
    });

    // Processing: parse only vs parse + verify + open timestamp + IQR
    // inspection.
    let wire_plain = {
        let lldp = LldpPacket::new(dpid, port);
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::LLDP_MULTICAST,
            Payload::Lldp(lldp),
        )
        .encode()
    };
    let wire_tgp = {
        let lldp = LldpPacket::new(dpid, port)
            .with_timestamp(key, SimTime::from_millis(123))
            .signed(key);
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::LLDP_MULTICAST,
            Payload::Lldp(lldp),
        )
        .encode()
    };
    let plain_process = time_per_iter(N, || {
        let frame = EthernetFrame::parse(&wire_plain).expect("parses");
        frame.lldp().map(|l| l.dpid)
    });
    let mut detector = tm_stats::IqrOutlierDetector::paper_default();
    for i in 0..50 {
        detector.inspect(5.0 + (i % 5) as f64 * 0.1);
    }
    let tgp_process = time_per_iter(N, || {
        let frame = EthernetFrame::parse(&wire_tgp).expect("parses");
        let lldp = frame.lldp().expect("lldp");
        let ok = lldp.verify(key);
        let ts = lldp.open_timestamp(key);
        let mut d = detector.clone();
        let v = d.inspect(5.2);
        (ok, ts, v)
    });

    let mut out = String::from("TABLE II: TOPOGUARD+ overhead on the LLDP path\n\n");
    out.push_str(&format!(
        "{:<22} {:<14} {:<14} {:<14} {}\n",
        "Function", "baseline", "TOPOGUARD+", "overhead", "paper overhead"
    ));
    out.push_str(&format!(
        "{:<22} {:<14} {:<14} {:<14} {}\n",
        "LLDP Construction",
        format!("{:.4} ms", plain_construct),
        format!("{:.4} ms", tgp_construct),
        format!("{:+.4} ms", tgp_construct - plain_construct),
        "0.134 ms",
    ));
    out.push_str(&format!(
        "{:<22} {:<14} {:<14} {:<14} {}\n",
        "LLDP Processing",
        format!("{:.4} ms", plain_process),
        format!("{:.4} ms", tgp_process),
        format!("{:+.4} ms", tgp_process - plain_process),
        "0.299 ms",
    ));
    out.push_str("\n(sub-millisecond control-plane-only cost: negligible, matching the paper's conclusion)\n");
    out
}

fn time_per_iter<T>(n: u32, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e3 / f64::from(n)
}

/// Table III: link discovery interval and link timeout per controller
/// personality, validated behaviorally: probe cadence is measured from a
/// live run, and expiry is measured by cutting a link and timing its
/// removal from the topology.
pub fn table3(seed: u64) -> String {
    let mut out = String::from(
        "TABLE III: Link discovery intervals and timeouts (validated in simulation)\n\n",
    );
    out.push_str(&format!(
        "{:<14} {:<12} {:<12} {:<18} {:<16}\n",
        "Controller", "interval", "timeout", "measured cadence", "measured expiry"
    ));
    for profile in ControllerProfile::ALL {
        let (cadence, expiry) = measure_profile(profile, seed);
        out.push_str(&format!(
            "{:<14} {:<12} {:<12} {:<18} {:<16}\n",
            profile.name,
            format!("{}s", profile.link_discovery_interval.as_millis() / 1000),
            format!("{}s", profile.link_timeout.as_millis() / 1000),
            format!("{cadence:.1}s between rounds"),
            format!("{expiry:.1}s after cut"),
        ));
    }
    out
}

pub(crate) fn measure_profile(profile: ControllerProfile, seed: u64) -> (f64, f64) {
    let s1 = DatapathId::new(1);
    let s2 = DatapathId::new(2);
    let mut spec = NetworkSpec::new();
    spec.add_switch(s1);
    spec.add_switch(s2);
    spec.link_switches(
        s1,
        PortNo::new(1),
        s2,
        PortNo::new(1),
        LinkProfile::fixed(Duration::from_millis(5)),
    );
    spec.add_host(
        HostId::new(1),
        MacAddr::from_index(1),
        IpAddr::new(10, 0, 0, 1),
    );
    spec.attach_host(
        HostId::new(1),
        s1,
        PortNo::new(2),
        LinkProfile::fixed(Duration::from_millis(5)),
    );
    spec.set_controller(Box::new(SdnController::new(ControllerConfig {
        profile,
        ..ControllerConfig::default()
    })));
    let mut sim = Simulator::new(spec, seed);

    // Cadence: probes emitted over 60 s / rounds.
    sim.run_for(Duration::from_secs(61));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let probes = ctrl.lldp_emitted as f64;
    let ports = 3.0; // two trunk endpoints + one host port
    let rounds = probes / ports;
    // First round fires 0.1 s after startup; cadence is the spacing between
    // consecutive rounds.
    let cadence = (61.0 - 0.1) / (rounds - 1.0);

    // Expiry: cut the trunk, poll until the topology empties.
    let cut_at = sim.now();
    sim.set_switch_port_admin(s1, PortNo::new(1), false);
    let mut expiry = f64::NAN;
    for _ in 0..2000 {
        sim.run_for(Duration::from_millis(100));
        let ctrl: &SdnController = sim.controller_as().expect("controller");
        if ctrl.topology().is_empty() {
            expiry = sim.now().since(cut_at).as_secs_f64();
            break;
        }
    }
    (cadence, expiry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_all_rows() {
        let t = table1(1);
        for name in ["ICMP Ping", "TCP SYN", "ARP ping", "TCP Idle Scan"] {
            assert!(t.contains(name), "{t}");
        }
    }

    #[test]
    fn table3_expiry_within_expected_bounds() {
        for profile in ControllerProfile::ALL {
            let (cadence, expiry) = measure_profile(profile, 3);
            let interval = profile.link_discovery_interval.as_secs_f64();
            assert!(
                (cadence - interval).abs() < interval * 0.15,
                "{}: cadence {cadence} vs {interval}",
                profile.name
            );
            let timeout = profile.link_timeout.as_secs_f64();
            // The link's age is measured from its last LLDP refresh (up to
            // one interval before the cut) and expiry is checked at
            // discovery rounds, so the cut-relative expiry lands within
            // ±one interval of the nominal timeout.
            assert!(
                expiry >= timeout - interval - 1.0 && expiry <= timeout + interval + 1.0,
                "{}: expiry {expiry} vs timeout {timeout}",
                profile.name
            );
        }
    }
}
