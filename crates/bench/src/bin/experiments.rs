//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- table1
//! cargo run --release -p bench --bin experiments -- fig5 --trials 500
//! ```

use bench::json::JsonValue;
use bench::{ablation, figures, metrics, sweeps, tables};
use tm_core::matrix;

const SEED: u64 = 0xD5_2018;

fn matrix_to_json(entries: &[tm_core::MatrixEntry]) -> JsonValue {
    JsonValue::Array(
        entries
            .iter()
            .map(|e| {
                JsonValue::object(vec![
                    ("attack", e.attack.into()),
                    ("defense", e.defense.as_str().into()),
                    ("succeeded", e.succeeded.into()),
                    ("detected", e.detected.into()),
                    ("alerts", e.alerts.into()),
                ])
            })
            .collect(),
    )
}

fn write_json(path: &Option<String>, entries: &[tm_core::MatrixEntry]) {
    if let Some(path) = path {
        let json = matrix_to_json(entries).to_pretty();
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id> [--trials N] [--seed N] [--json FILE]\n\
         ids: table1 table2 table3 fig4 fig5 fig6 fig7 fig8 fig10 fig11 fig12 fig13\n\
              matrix matrix_extended scan_detection alert_flood downtime ablations\n\
              ablation_lli ablation_amnesia ablation_timeout metrics all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(id) = args.first() else { usage() };
    let mut trials = 200usize;
    let mut seed = SEED;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json_path = args.get(i + 1).cloned();
                if json_path.is_none() {
                    usage();
                }
                i += 2;
            }
            "--trials" => {
                trials = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    match id.as_str() {
        "table1" => println!("{}", tables::table1(seed)),
        "table2" => println!("{}", tables::table2()),
        "table3" => println!("{}", tables::table3(seed)),
        "fig4" => println!("{}", figures::fig4(seed, trials.max(1000))),
        // Figs. 5-8 come from the same trial batch.
        "fig5" | "fig6" | "fig7" | "fig8" => println!("{}", figures::figs5_to_8(seed, trials)),
        "fig10" => println!("{}", figures::fig10(seed, 100)),
        "fig11" | "fig13" => println!("{}", figures::fig11(seed)),
        "fig12" => {
            println!("{}", figures::fig12(seed));
            println!("alert log:");
            for line in figures::fig12_alerts(seed).iter().take(6) {
                println!("  {line}");
            }
        }
        "matrix" => {
            let entries = matrix::run_matrix(seed);
            println!("{}", matrix::render(&entries));
            write_json(&json_path, &entries);
        }
        "matrix_extended" => {
            let entries = matrix::run_matrix_extended(seed);
            println!("{}", matrix::render(&entries));
            write_json(&json_path, &entries);
        }
        "scan_detection" => println!("{}", sweeps::scan_detection()),
        "alert_flood" => println!("{}", sweeps::alert_flood(seed)),
        "downtime" => println!("{}", sweeps::downtime_windows(80.0)),
        "metrics" => println!("{}", metrics::metrics_report(seed)),
        "ablation_lli" => println!("{}", ablation::lli_fence_sweep(seed)),
        "ablation_amnesia" => println!("{}", ablation::amnesia_hold_sweep(seed)),
        "ablation_timeout" => println!("{}", ablation::probe_timeout_sweep(seed)),
        "ablations" => {
            println!("{}", ablation::lli_fence_sweep(seed));
            println!("{}", ablation::amnesia_hold_sweep(seed));
            println!("{}", ablation::probe_timeout_sweep(seed));
        }
        "all" => {
            println!("{}", tables::table1(seed));
            println!("{}", tables::table2());
            println!("{}", tables::table3(seed));
            println!("{}", figures::fig4(seed, 1000));
            println!("{}", figures::figs5_to_8(seed, trials));
            println!("{}", figures::fig10(seed, 100));
            println!("{}", figures::fig11(seed));
            println!("{}", figures::fig12(seed));
            for line in figures::fig12_alerts(seed).iter().take(6) {
                println!("  {line}");
            }
            println!();
            println!("DETECTION MATRIX (headline result)\n");
            let entries = matrix::run_matrix(seed);
            println!("{}", matrix::render(&entries));
            println!("{}", sweeps::scan_detection());
            println!("{}", sweeps::alert_flood(seed));
            println!("{}", sweeps::downtime_windows(80.0));
            println!("{}", ablation::lli_fence_sweep(seed));
            println!("{}", ablation::amnesia_hold_sweep(seed));
            println!("{}", ablation::probe_timeout_sweep(seed));
            println!("{}", metrics::metrics_report(seed));
        }
        _ => usage(),
    }
}
