//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- table1
//! cargo run --release -p bench --bin experiments -- fig5 --trials 500
//! cargo run --release -p bench --bin experiments -- campaign list
//! cargo run --release -p bench --bin experiments -- campaign hijack --seeds 10 --workers 4
//! ```

use bench::cli::CommonArgs;
use bench::json::JsonValue;
use bench::{ablation, campaign, figures, metrics, sweeps, tables};
use tm_campaign::{run_campaign, CampaignSpec};
use tm_core::matrix;

fn matrix_to_json(entries: &[tm_core::MatrixEntry]) -> JsonValue {
    JsonValue::Array(
        entries
            .iter()
            .map(|e| {
                JsonValue::object(vec![
                    ("attack", e.attack.into()),
                    ("defense", e.defense.as_str().into()),
                    ("succeeded", e.succeeded.into()),
                    ("detected", e.detected.into()),
                    ("alerts", e.alerts.into()),
                    (
                        "failure",
                        e.failure
                            .as_deref()
                            .map_or(JsonValue::Null, JsonValue::from),
                    ),
                ])
            })
            .collect(),
    )
}

fn write_json(path: &Option<String>, entries: &[tm_core::MatrixEntry]) {
    if let Some(path) = path {
        let json = matrix_to_json(entries).to_pretty();
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id> [--trials N] [--seed HEX] [--json FILE]\n\
         ids: table1 table2 table3 fig4 fig5 fig6 fig7 fig8 fig10 fig11 fig12 fig13\n\
              matrix matrix_extended fault_matrix scan_detection alert_flood downtime\n\
              ablations ablation_lli ablation_amnesia ablation_timeout metrics all\n\
              campaign <scenario|smoke|faults|list> [--seeds N] [--workers N] [--confidence P]\n\
              scale [--seeds N] [--workers N]  (alias for `campaign scale`)\n\
              load [--seeds N] [--workers N] [--probe-only]\n\
                     (flow-level traffic campaign + 102,400-host throughput probe;\n\
                      --probe-only skips the campaign)\n\
              matrix --topo <labels|families|default> [--attacks CSV] [--stacks CSV]\n\
                     [--seeds N] [--workers N] [--confidence P]\n\
                     (detection matrix on generated fabrics; families fat-tree, ring,\n\
                      linear, core-edge, datacenter expand to a small+large pair;\n\
                      datacenter tops out at 1000 switches)"
    );
    std::process::exit(2);
}

/// Expands a `--topo` grid spec: comma-separated topology labels
/// (`fat-tree-8`, `ring-4x2`, ...) or family names, each family expanding
/// to its small+large default pair so one family still covers two sizes.
/// `default` is the full two-kinds × two-sizes default grid.
fn expand_topo_spec(spec: &str) -> Vec<String> {
    spec.split(',')
        .filter(|item| !item.is_empty())
        .flat_map(|item| match item {
            "default" => campaign::FABRIC_MATRIX_TOPOS.to_vec(),
            "fat-tree" => vec!["fat-tree-4", "fat-tree-8"],
            "ring" => vec!["ring-4x2", "ring-8x2"],
            "linear" => vec!["linear-4x2", "linear-8x2"],
            "core-edge" => vec!["core-edge-2x12x2", "core-edge-4x24x2"],
            // The 1k-switch frontier: hostless cores, single-host edges
            // (role synthesis keeps the paper's geometry — see
            // `tm_core::fabric`). Expect minutes per cell, not seconds.
            "datacenter" => vec!["core-edge-4x96x1", "core-edge-8x992x1"],
            other => vec![other],
        })
        .map(String::from)
        .collect()
}

/// `matrix --topo`: the detection matrix re-run on generated fabrics, as
/// a multi-seed campaign. Same stdout/stderr split as [`campaign_cmd`]:
/// the report and per-cell `BENCH_JSON` lines are deterministic and
/// byte-identical at any `--workers` count; wall time goes to stderr.
fn topo_matrix_cmd(args: &[String]) {
    let common = CommonArgs::parse(
        args,
        &[
            "--topo",
            "--attacks",
            "--stacks",
            "--seeds",
            "--workers",
            "--confidence",
        ],
    )
    .unwrap_or_else(|e| {
        eprintln!("matrix --topo: {e}");
        usage()
    });
    let fail = |e: String| -> ! {
        eprintln!("matrix --topo: {e}");
        std::process::exit(2)
    };
    let topo_spec: String = common
        .extra_parsed("--topo", "default".to_string())
        .unwrap_or_else(|e| fail(e));
    let attacks_spec: String = common
        .extra_parsed(
            "--attacks",
            campaign::FABRIC_MATRIX_DEFAULT_ATTACKS.join(","),
        )
        .unwrap_or_else(|e| fail(e));
    let stacks_spec: String = common
        .extra_parsed("--stacks", campaign::FABRIC_MATRIX_STACKS.join(","))
        .unwrap_or_else(|e| fail(e));
    let seeds: usize = common
        .extra_parsed("--seeds", 5)
        .unwrap_or_else(|e| fail(e));
    let workers: usize = common
        .extra_parsed("--workers", 1)
        .unwrap_or_else(|e| fail(e));
    let confidence: f64 = common
        .extra_parsed("--confidence", 0.95)
        .unwrap_or_else(|e| fail(e));

    let topos = expand_topo_spec(&topo_spec);
    let attacks: Vec<String> = attacks_spec
        .split(',')
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    let stacks: Vec<String> = stacks_spec
        .split(',')
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    fn as_refs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }

    let scenario =
        campaign::fabric_matrix_scenario(&as_refs(&topos), &as_refs(&attacks), &as_refs(&stacks))
            .unwrap_or_else(|e| fail(e));
    let mut registry = tm_campaign::Registry::new();
    registry.register(scenario).unwrap_or_else(|e| fail(e));

    let mut spec = CampaignSpec::new("fabric-matrix", common.seed);
    spec.seeds = seeds;
    spec.workers = workers;
    spec.confidence = confidence;
    spec.quiet_panics = true;

    // tm-lint: allow(wall-clock) -- campaign wall time is the perf-trajectory record; stderr only, never in the deterministic report
    let start = std::time::Instant::now();
    let report = run_campaign(&registry, &spec).unwrap_or_else(|e| fail(e));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    print!("{}", report.render());
    for line in campaign::cell_bench_lines(&report) {
        println!("{line}");
    }
    println!();

    let wall = JsonValue::object(vec![
        ("suite", "campaign-wall".into()),
        ("bench", "fabric-matrix".into()),
        ("workers", workers.into()),
        ("runs", report.runs.len().into()),
        ("failed", report.total_failures().into()),
        ("wall_ms", wall_ms.into()),
    ]);
    eprintln!("BENCH_JSON {}", wall.to_compact());

    if let Some(path) = &common.json {
        let json = campaign::summary_json(&report).to_pretty();
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

/// The `campaign` subcommand: multi-seed parameter-grid campaigns over the
/// registry in `bench::campaign`.
///
/// Everything deterministic — the report and the per-cell `BENCH_JSON`
/// records — goes to **stdout**, so two invocations differing only in
/// `--workers` are byte-identical there (CI diffs exactly that). The
/// wall-clock record, which legitimately varies, goes to **stderr**.
fn campaign_cmd(args: &[String]) {
    let Some(target) = args.first() else { usage() };
    let registry = campaign::registry();

    if target == "list" {
        for s in registry.scenarios() {
            let cells = s.cells().len();
            println!("{:<18} {:>3} cells  {}", s.name, cells, s.description);
        }
        return;
    }

    let common = CommonArgs::parse(&args[1..], &["--seeds", "--workers", "--confidence"])
        .unwrap_or_else(|e| {
            eprintln!("campaign: {e}");
            usage()
        });
    let fail = |e: String| -> ! {
        eprintln!("campaign: {e}");
        std::process::exit(2)
    };
    let seeds: usize = common
        .extra_parsed("--seeds", 5)
        .unwrap_or_else(|e| fail(e));
    let workers: usize = common
        .extra_parsed("--workers", 1)
        .unwrap_or_else(|e| fail(e));
    let confidence: f64 = common
        .extra_parsed("--confidence", 0.95)
        .unwrap_or_else(|e| fail(e));

    let names: Vec<&str> = if target == "smoke" {
        campaign::SMOKE_SCENARIOS.to_vec()
    } else if target == "faults" {
        campaign::FAULT_SCENARIOS.to_vec()
    } else {
        vec![target.as_str()]
    };

    let mut summaries = Vec::new();
    for name in names {
        let mut spec = CampaignSpec::new(name, common.seed);
        spec.seeds = seeds;
        spec.workers = workers;
        spec.confidence = confidence;
        // The driver owns the process: silence the default panic hook's
        // backtraces while isolated cells fail (they are *reported*).
        spec.quiet_panics = true;

        // tm-lint: allow(wall-clock) -- campaign wall time is the perf-trajectory record; stderr only, never in the deterministic report
        let start = std::time::Instant::now();
        let report = run_campaign(&registry, &spec).unwrap_or_else(|e| fail(e));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        print!("{}", report.render());
        for line in campaign::cell_bench_lines(&report) {
            println!("{line}");
        }
        println!();

        let wall = JsonValue::object(vec![
            ("suite", "campaign-wall".into()),
            ("bench", name.into()),
            ("workers", workers.into()),
            ("runs", report.runs.len().into()),
            ("failed", report.total_failures().into()),
            ("wall_ms", wall_ms.into()),
        ]);
        eprintln!("BENCH_JSON {}", wall.to_compact());

        summaries.push(campaign::summary_json(&report));
    }

    if let Some(path) = &common.json {
        let json = if summaries.len() == 1 {
            summaries.remove(0).to_pretty()
        } else {
            JsonValue::Array(summaries).to_pretty()
        };
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

/// `load`: the flow-level traffic campaign (hosts × demand × stack on the
/// fat-tree-4 fabric) followed by the 102,400-host throughput probe.
/// `--probe-only` skips the campaign — the CI smoke path. Same
/// stdout/stderr split as [`campaign_cmd`]: everything on stdout is a
/// pure function of the seed (diffable across `--workers`); the wall
/// clock goes to stderr as the `traffic-throughput` `BENCH_JSON` record.
fn load_cmd(args: &[String]) {
    let probe_only = args.iter().any(|a| a == "--probe-only");
    let filtered: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--probe-only")
        .cloned()
        .collect();
    if !probe_only {
        let mut forwarded = vec!["load".to_string()];
        forwarded.extend_from_slice(&filtered);
        campaign_cmd(&forwarded);
    }
    let common = CommonArgs::parse(&filtered, &["--seeds", "--workers", "--confidence"])
        .unwrap_or_else(|e| {
            eprintln!("load: {e}");
            usage()
        });
    throughput_probe(common.seed);
}

/// Runs the ≥100k-host flow-level scenario end-to-end and reports the
/// aggregation leverage: how far the flow-level wall clock sits below a
/// per-packet extrapolation. The extrapolation charges one engine event
/// per aggregated packet — a deliberate *underestimate* of per-packet
/// simulation (every real packet crosses several hops), so the printed
/// speedup is a floor.
fn throughput_probe(seed: u64) {
    use tm_core::{DefenseStack, LoadScenario, TrafficLoad};
    use tm_topo::TopoKind;

    let scenario = LoadScenario::new(
        TopoKind::FatTree { k: 4 },
        DefenseStack::TopoGuardPlus,
        TrafficLoad::steady(12_800, 2.0),
        seed,
    );
    // tm-lint: allow(wall-clock) -- the probe's wall time is the perf-trajectory record; stderr only, never in the deterministic report
    let start = std::time::Instant::now();
    let out = tm_core::load::run(&scenario);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Deterministic: counters are a pure function of the seed, and the
    // speedup is a ratio of counters (wall cancels out of the model).
    let speedup =
        (out.events_processed + out.packets_aggregated) as f64 / out.events_processed as f64;
    println!("traffic throughput probe: fat-tree-4, 12800 hosts/edge, steady-2, topoguard-plus, seed {seed:#x}");
    println!("  virtual hosts       {}", out.hosts_virtual);
    println!("  flows offered       {}", out.flows_offered);
    println!("  packets aggregated  {}", out.packets_aggregated);
    println!("  packets expanded    {}", out.packets_expanded);
    println!("  packet-ins          {}", out.packet_ins);
    println!("  events processed    {}", out.events_processed);
    println!("  alerts              {}", out.alerts_total);
    println!("  flow-level speedup  {speedup:.0}x vs per-packet extrapolation");

    let record = JsonValue::object(vec![
        ("suite", "traffic-throughput".into()),
        ("hosts", out.hosts_virtual.into()),
        ("flows_offered", out.flows_offered.into()),
        ("packets_aggregated", out.packets_aggregated.into()),
        ("packets_expanded", out.packets_expanded.into()),
        ("packet_ins", out.packet_ins.into()),
        ("events_processed", out.events_processed.into()),
        ("wall_ms", wall_ms.into()),
        ("extrapolated_wall_ms", (wall_ms * speedup).into()),
        ("speedup", speedup.into()),
    ]);
    eprintln!("BENCH_JSON {}", record.to_compact());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(id) = args.first() else { usage() };
    if id == "campaign" {
        campaign_cmd(&args[1..]);
        return;
    }
    if id == "matrix" && args.iter().any(|a| a == "--topo") {
        // Topology-parameterized variant: runs as a multi-seed campaign so
        // verdicts come with ± CI and output is worker-count independent.
        topo_matrix_cmd(&args[1..]);
        return;
    }
    if id == "scale" {
        // Alias for `campaign scale`: the datacenter-fabric soak grid.
        let mut forwarded = vec!["scale".to_string()];
        forwarded.extend_from_slice(&args[1..]);
        campaign_cmd(&forwarded);
        return;
    }
    if id == "load" {
        load_cmd(&args[1..]);
        return;
    }

    let common = CommonArgs::parse(&args[1..], &[]).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    });
    let trials = common.trials;
    let seed = common.seed;
    let json_path = common.json;

    match id.as_str() {
        "table1" => println!("{}", tables::table1(seed)),
        "table2" => println!("{}", tables::table2()),
        "table3" => println!("{}", tables::table3(seed)),
        "fig4" => println!("{}", figures::fig4(seed, trials.max(1000))),
        // Figs. 5-8 come from the same trial batch.
        "fig5" | "fig6" | "fig7" | "fig8" => println!("{}", figures::figs5_to_8(seed, trials)),
        "fig10" => println!("{}", figures::fig10(seed, 100)),
        "fig11" | "fig13" => println!("{}", figures::fig11(seed)),
        "fig12" => {
            println!("{}", figures::fig12(seed));
            println!("alert log:");
            for line in figures::fig12_alerts(seed).iter().take(6) {
                println!("  {line}");
            }
        }
        "matrix" => {
            let entries = matrix::run_matrix(seed);
            println!("{}", matrix::render(&entries));
            write_json(&json_path, &entries);
        }
        "matrix_extended" => {
            let entries = matrix::run_matrix_extended(seed);
            println!("{}", matrix::render(&entries));
            write_json(&json_path, &entries);
        }
        "fault_matrix" => {
            // The detection matrix re-run under each degraded-network
            // profile: does detection survive loss, jitter, congestion,
            // and switch restarts?
            let mut all = Vec::new();
            for profile in tm_core::FaultProfile::MATRIX_SWEEP {
                println!(
                    "DETECTION MATRIX under fault profile: {}\n",
                    profile.label()
                );
                let entries = matrix::run_matrix_under(profile, seed);
                println!("{}", matrix::render(&entries));
                all.extend(entries);
            }
            write_json(&json_path, &all);
        }
        "scan_detection" => println!("{}", sweeps::scan_detection()),
        "alert_flood" => println!("{}", sweeps::alert_flood(seed)),
        "downtime" => println!("{}", sweeps::downtime_windows(80.0)),
        "metrics" => println!("{}", metrics::metrics_report(seed)),
        "ablation_lli" => println!("{}", ablation::lli_fence_sweep(seed)),
        "ablation_amnesia" => println!("{}", ablation::amnesia_hold_sweep(seed)),
        "ablation_timeout" => println!("{}", ablation::probe_timeout_sweep(seed)),
        "ablations" => {
            println!("{}", ablation::lli_fence_sweep(seed));
            println!("{}", ablation::amnesia_hold_sweep(seed));
            println!("{}", ablation::probe_timeout_sweep(seed));
        }
        "all" => {
            println!("{}", tables::table1(seed));
            println!("{}", tables::table2());
            println!("{}", tables::table3(seed));
            println!("{}", figures::fig4(seed, 1000));
            println!("{}", figures::figs5_to_8(seed, trials));
            println!("{}", figures::fig10(seed, 100));
            println!("{}", figures::fig11(seed));
            println!("{}", figures::fig12(seed));
            for line in figures::fig12_alerts(seed).iter().take(6) {
                println!("  {line}");
            }
            println!();
            println!("DETECTION MATRIX (headline result)\n");
            let entries = matrix::run_matrix(seed);
            println!("{}", matrix::render(&entries));
            println!("{}", sweeps::scan_detection());
            println!("{}", sweeps::alert_flood(seed));
            println!("{}", sweeps::downtime_windows(80.0));
            println!("{}", ablation::lli_fence_sweep(seed));
            println!("{}", ablation::amnesia_hold_sweep(seed));
            println!("{}", ablation::probe_timeout_sweep(seed));
            println!("{}", metrics::metrics_report(seed));
        }
        _ => usage(),
    }
}
