//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- table1
//! cargo run --release -p bench --bin experiments -- fig5 --trials 500
//! cargo run --release -p bench --bin experiments -- campaign list
//! cargo run --release -p bench --bin experiments -- campaign hijack --seeds 10 --workers 4
//! ```

use std::path::{Path, PathBuf};

use bench::cli::CommonArgs;
use bench::json::JsonValue;
use bench::{ablation, campaign, figures, metrics, runlog, sweeps, tables};
use tm_campaign::{
    aggregate_stream, run_campaign, run_campaign_with, CampaignReport, CampaignSpec,
    CheckpointHeader, Registry, Resume, Saver, Shard, TeeSink,
};
use tm_core::matrix;

/// The campaign family's value-taking flags (shared by `campaign`,
/// `matrix --topo`, and `load`). `--resume` is boolean and filtered out
/// before [`CommonArgs::parse`] sees the argument list.
const CAMPAIGN_FLAGS: &[&str] = &["--seeds", "--workers", "--confidence", "--shard", "--state"];

fn matrix_to_json(entries: &[tm_core::MatrixEntry]) -> JsonValue {
    JsonValue::Array(
        entries
            .iter()
            .map(|e| {
                JsonValue::object(vec![
                    ("attack", e.attack.into()),
                    ("defense", e.defense.as_str().into()),
                    ("succeeded", e.succeeded.into()),
                    ("detected", e.detected.into()),
                    ("alerts", e.alerts.into()),
                    (
                        "failure",
                        e.failure
                            .as_deref()
                            .map_or(JsonValue::Null, JsonValue::from),
                    ),
                ])
            })
            .collect(),
    )
}

fn write_json(path: &Option<String>, entries: &[tm_core::MatrixEntry]) {
    if let Some(path) = path {
        let json = matrix_to_json(entries).to_pretty();
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id> [--trials N] [--seed HEX] [--json FILE]\n\
         ids: table1 table2 table3 fig4 fig5 fig6 fig7 fig8 fig10 fig11 fig12 fig13\n\
              matrix matrix_extended fault_matrix scan_detection alert_flood downtime\n\
              ablations ablation_lli ablation_amnesia ablation_timeout metrics all\n\
              campaign <scenario|smoke|faults|list> [--seeds N] [--workers N] [--confidence P]\n\
                     [--shard I/N] [--state DIR] [--resume]\n\
                     (--shard runs only grid cells `index mod N == I`; seeds stay global,\n\
                      so merged shard output is byte-identical to a single invocation;\n\
                      --state writes a binary run-log + atomic checkpoint per shard;\n\
                      --resume skips cells the checkpoint already finalized)\n\
              campaign replay <LOG...> [--json FILE]\n\
                     (merge shard run-logs and re-aggregate without re-simulating)\n\
              scale [--seeds N] [--workers N]  (alias for `campaign scale`)\n\
              load [--seeds N] [--workers N] [--probe-only]\n\
                     (flow-level traffic campaign + 102,400-host throughput probe;\n\
                      --probe-only skips the campaign)\n\
              matrix --topo <labels|families|default> [--attacks CSV] [--stacks CSV]\n\
                     [--seeds N] [--workers N] [--confidence P] [--shard I/N]\n\
                     [--state DIR] [--resume]\n\
                     (detection matrix on generated fabrics; families fat-tree, ring,\n\
                      linear, core-edge, datacenter expand to a small+large pair;\n\
                      datacenter tops out at 1000 switches)"
    );
    std::process::exit(2);
}

/// Peak resident set size (VmHWM) in kB, from `/proc/self/status`.
/// `None` on platforms without procfs — the record field is just omitted.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|line| line.starts_with("VmHWM:"))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
}

/// Campaign execution options beyond the spec itself: shard assignment
/// and on-disk state (run-log + checkpoint) with resume.
struct CampaignIo {
    shard: Shard,
    state: Option<PathBuf>,
    resume: bool,
}

impl CampaignIo {
    /// Reads `--shard`/`--state` out of parsed args; `resume` comes from
    /// the caller (boolean flags are filtered before parsing).
    fn from_args(common: &CommonArgs, resume: bool) -> Result<CampaignIo, String> {
        let shard_spec: String = common.extra_parsed("--shard", "0/1".to_string())?;
        let shard = Shard::parse(&shard_spec)?;
        let state: String = common.extra_parsed("--state", String::new())?;
        let state = (!state.is_empty()).then(|| PathBuf::from(state));
        if resume && state.is_none() {
            return Err("--resume needs --state DIR (that is where the checkpoint lives)".into());
        }
        Ok(CampaignIo {
            shard,
            state,
            resume,
        })
    }
}

/// Runs one campaign under `io`: plain in-memory execution without
/// `--state`; with it, every run streams into the shard's binary run-log
/// and every finalized cell into its atomic checkpoint, with `--resume`
/// skipping cells both artifacts agree are complete. Returns the report
/// plus the run-log size when state is on.
fn execute_campaign(
    registry: &Registry,
    spec: &CampaignSpec,
    io: &CampaignIo,
) -> Result<(CampaignReport, Option<u64>), String> {
    let Some(dir) = &io.state else {
        return run_campaign(registry, spec).map(|report| (report, None));
    };
    let scenario = registry
        .get(&spec.scenario)
        .ok_or_else(|| format!("unknown scenario `{}`", spec.scenario))?;
    std::fs::create_dir_all(dir).map_err(|e| format!("state dir {}: {e}", dir.display()))?;
    let tag = format!(
        "{}.shard{}of{}",
        spec.scenario, spec.shard.index, spec.shard.count
    );
    let ckpt_path = dir.join(format!("{tag}.ckpt"));
    let log_path = dir.join(format!("{tag}.runlog"));
    let ckpt_header = CheckpointHeader::for_spec(scenario, spec);
    let log_header = runlog::RunLogHeader::for_spec(scenario, spec);

    // Resume rule: a cell is skippable iff the checkpoint holds its
    // finalized report AND the run-log holds all of its raw records —
    // the pair must survive together or the cell re-runs.
    let mut resumed_cells = Vec::new();
    let mut kept_records = Vec::new();
    if io.resume {
        let checkpointed = tm_campaign::checkpoint::load(&ckpt_path, &ckpt_header)?;
        let complete = match runlog::read(&log_path) {
            Ok(log) if log.header.same_campaign(&log_header) && log.header.shard == spec.shard => {
                runlog::complete_cells(&log)
            }
            // Missing or damaged log: nothing is resumable from it.
            _ => Default::default(),
        };
        for cell in checkpointed {
            if let Some(records) = complete.get(&cell.index) {
                kept_records.extend(records.iter().cloned());
                resumed_cells.push(cell);
            }
        }
        eprintln!(
            "resume: {} completed cell(s) carried over from {}",
            resumed_cells.len(),
            dir.display()
        );
    }
    let mut writer = runlog::Writer::create(&log_path, &log_header, &kept_records)?;
    let mut saver = Saver::new(ckpt_path, ckpt_header, resumed_cells.clone());
    let mut tee = TeeSink {
        first: &mut writer,
        second: &mut saver,
    };
    let report = run_campaign_with(
        registry,
        spec,
        &Resume {
            cells: resumed_cells,
        },
        &mut tee,
    )?;
    Ok((report, Some(writer.bytes())))
}

/// The stderr `campaign-wall` perf record: wall clock, peak RSS, and the
/// run-log footprint when state is on. Never in the deterministic stdout.
fn campaign_wall_record(
    name: &str,
    workers: usize,
    shard: Shard,
    report: &CampaignReport,
    wall_ms: f64,
    runlog_bytes: Option<u64>,
) {
    let mut fields = vec![
        ("suite", JsonValue::from("campaign-wall")),
        ("bench", name.into()),
        ("workers", workers.into()),
        ("shard", shard.label().as_str().into()),
        ("runs", report.total_runs.into()),
        ("failed", report.total_failures().into()),
        ("wall_ms", wall_ms.into()),
    ];
    if let Some(kb) = peak_rss_kb() {
        fields.push(("peak_rss_kb", (kb as usize).into()));
    }
    if let Some(bytes) = runlog_bytes {
        fields.push(("runlog_bytes", (bytes as usize).into()));
    }
    eprintln!("BENCH_JSON {}", JsonValue::object(fields).to_compact());
}

/// `campaign replay <LOG...>`: merge shard run-logs and re-aggregate the
/// canonical stream — the exact stdout of the original campaign, with
/// zero simulation work.
fn replay_cmd(args: &[String]) {
    let mut files: Vec<String> = Vec::new();
    let mut flags: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            flags.push(args[i].clone());
            if let Some(value) = args.get(i + 1) {
                flags.push(value.clone());
            }
            i += 2;
        } else {
            files.push(args[i].clone());
            i += 1;
        }
    }
    let common = CommonArgs::parse(&flags, &[]).unwrap_or_else(|e| {
        eprintln!("campaign replay: {e}");
        usage()
    });
    if files.is_empty() {
        eprintln!("campaign replay: needs at least one run-log file");
        usage()
    }
    let fail = |e: String| -> ! {
        eprintln!("campaign replay: {e}");
        std::process::exit(2)
    };
    let logs: Vec<runlog::RunLog> = files
        .iter()
        .map(|f| runlog::read(Path::new(f)))
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| fail(e));
    for (file, log) in files.iter().zip(&logs) {
        if log.truncated {
            eprintln!("warning: {file} has a damaged tail; incomplete cells will be rejected");
        }
    }
    let (header, records) = runlog::merge(&logs).unwrap_or_else(|e| fail(e));
    let grid = header.grid();
    let report = aggregate_stream(&header.meta(), &grid, records).unwrap_or_else(|e| fail(e));

    print!("{}", report.render());
    for line in campaign::cell_bench_lines(&report) {
        println!("{line}");
    }
    println!();
    eprintln!(
        "replayed {} runs from {} log(s) without re-simulating",
        report.total_runs,
        logs.len()
    );
    if let Some(path) = &common.json {
        let json = campaign::summary_json(&report).to_pretty();
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

/// Expands a `--topo` grid spec: comma-separated topology labels
/// (`fat-tree-8`, `ring-4x2`, ...) or family names, each family expanding
/// to its small+large default pair so one family still covers two sizes.
/// `default` is the full two-kinds × two-sizes default grid.
fn expand_topo_spec(spec: &str) -> Vec<String> {
    spec.split(',')
        .filter(|item| !item.is_empty())
        .flat_map(|item| match item {
            "default" => campaign::FABRIC_MATRIX_TOPOS.to_vec(),
            "fat-tree" => vec!["fat-tree-4", "fat-tree-8"],
            "ring" => vec!["ring-4x2", "ring-8x2"],
            "linear" => vec!["linear-4x2", "linear-8x2"],
            "core-edge" => vec!["core-edge-2x12x2", "core-edge-4x24x2"],
            // The 1k-switch frontier: hostless cores, single-host edges
            // (role synthesis keeps the paper's geometry — see
            // `tm_core::fabric`). Expect minutes per cell, not seconds.
            "datacenter" => vec!["core-edge-4x96x1", "core-edge-8x992x1"],
            other => vec![other],
        })
        .map(String::from)
        .collect()
}

/// `matrix --topo`: the detection matrix re-run on generated fabrics, as
/// a multi-seed campaign. Same stdout/stderr split as [`campaign_cmd`]:
/// the report and per-cell `BENCH_JSON` lines are deterministic and
/// byte-identical at any `--workers` count; wall time goes to stderr.
fn topo_matrix_cmd(args: &[String]) {
    let resume = args.iter().any(|a| a == "--resume");
    let filtered: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--resume")
        .cloned()
        .collect();
    let mut flags: Vec<&str> = vec!["--topo", "--attacks", "--stacks"];
    flags.extend_from_slice(CAMPAIGN_FLAGS);
    let common = CommonArgs::parse(&filtered, &flags).unwrap_or_else(|e| {
        eprintln!("matrix --topo: {e}");
        usage()
    });
    let fail = |e: String| -> ! {
        eprintln!("matrix --topo: {e}");
        std::process::exit(2)
    };
    let topo_spec: String = common
        .extra_parsed("--topo", "default".to_string())
        .unwrap_or_else(|e| fail(e));
    let attacks_spec: String = common
        .extra_parsed(
            "--attacks",
            campaign::FABRIC_MATRIX_DEFAULT_ATTACKS.join(","),
        )
        .unwrap_or_else(|e| fail(e));
    let stacks_spec: String = common
        .extra_parsed("--stacks", campaign::FABRIC_MATRIX_STACKS.join(","))
        .unwrap_or_else(|e| fail(e));
    let seeds: usize = common
        .extra_parsed("--seeds", 5)
        .unwrap_or_else(|e| fail(e));
    let workers: usize = common
        .extra_parsed("--workers", 1)
        .unwrap_or_else(|e| fail(e));
    let confidence: f64 = common
        .extra_parsed("--confidence", 0.95)
        .unwrap_or_else(|e| fail(e));
    let io = CampaignIo::from_args(&common, resume).unwrap_or_else(|e| fail(e));

    let topos = expand_topo_spec(&topo_spec);
    let attacks: Vec<String> = attacks_spec
        .split(',')
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    let stacks: Vec<String> = stacks_spec
        .split(',')
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    fn as_refs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }

    let scenario =
        campaign::fabric_matrix_scenario(&as_refs(&topos), &as_refs(&attacks), &as_refs(&stacks))
            .unwrap_or_else(|e| fail(e));
    let mut registry = tm_campaign::Registry::new();
    registry.register(scenario).unwrap_or_else(|e| fail(e));

    let mut spec = CampaignSpec::new("fabric-matrix", common.seed);
    spec.seeds = seeds;
    spec.workers = workers;
    spec.confidence = confidence;
    spec.shard = io.shard;
    spec.quiet_panics = true;

    // tm-lint: allow(wall-clock) -- campaign wall time is the perf-trajectory record; stderr only, never in the deterministic report
    let start = std::time::Instant::now();
    let (report, runlog_bytes) =
        execute_campaign(&registry, &spec, &io).unwrap_or_else(|e| fail(e));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    print!("{}", report.render());
    for line in campaign::cell_bench_lines(&report) {
        println!("{line}");
    }
    println!();

    campaign_wall_record(
        "fabric-matrix",
        workers,
        io.shard,
        &report,
        wall_ms,
        runlog_bytes,
    );

    if let Some(path) = &common.json {
        let json = campaign::summary_json(&report).to_pretty();
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

/// The `campaign` subcommand: multi-seed parameter-grid campaigns over the
/// registry in `bench::campaign`.
///
/// Everything deterministic — the report and the per-cell `BENCH_JSON`
/// records — goes to **stdout**, so two invocations differing only in
/// `--workers` are byte-identical there (CI diffs exactly that). The
/// wall-clock record, which legitimately varies, goes to **stderr**.
fn campaign_cmd(args: &[String]) {
    let Some(target) = args.first() else { usage() };
    if target == "replay" {
        replay_cmd(&args[1..]);
        return;
    }
    let registry = campaign::registry();

    if target == "list" {
        for s in registry.scenarios() {
            let cells = s.cells().len();
            println!("{:<18} {:>3} cells  {}", s.name, cells, s.description);
        }
        return;
    }

    // `--resume` is boolean; every flag CommonArgs sees takes a value.
    let resume = args[1..].iter().any(|a| a == "--resume");
    let filtered: Vec<String> = args[1..]
        .iter()
        .filter(|a| a.as_str() != "--resume")
        .cloned()
        .collect();
    let common = CommonArgs::parse(&filtered, CAMPAIGN_FLAGS).unwrap_or_else(|e| {
        eprintln!("campaign: {e}");
        usage()
    });
    let fail = |e: String| -> ! {
        eprintln!("campaign: {e}");
        std::process::exit(2)
    };
    let seeds: usize = common
        .extra_parsed("--seeds", 5)
        .unwrap_or_else(|e| fail(e));
    let workers: usize = common
        .extra_parsed("--workers", 1)
        .unwrap_or_else(|e| fail(e));
    let confidence: f64 = common
        .extra_parsed("--confidence", 0.95)
        .unwrap_or_else(|e| fail(e));
    let io = CampaignIo::from_args(&common, resume).unwrap_or_else(|e| fail(e));

    let names: Vec<&str> = if target == "smoke" {
        campaign::SMOKE_SCENARIOS.to_vec()
    } else if target == "faults" {
        campaign::FAULT_SCENARIOS.to_vec()
    } else {
        vec![target.as_str()]
    };

    let mut summaries = Vec::new();
    for name in names {
        let mut spec = CampaignSpec::new(name, common.seed);
        spec.seeds = seeds;
        spec.workers = workers;
        spec.confidence = confidence;
        spec.shard = io.shard;
        // The driver owns the process: silence the default panic hook's
        // backtraces while isolated cells fail (they are *reported*).
        spec.quiet_panics = true;

        // tm-lint: allow(wall-clock) -- campaign wall time is the perf-trajectory record; stderr only, never in the deterministic report
        let start = std::time::Instant::now();
        let (report, runlog_bytes) =
            execute_campaign(&registry, &spec, &io).unwrap_or_else(|e| fail(e));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        print!("{}", report.render());
        for line in campaign::cell_bench_lines(&report) {
            println!("{line}");
        }
        println!();

        campaign_wall_record(name, workers, io.shard, &report, wall_ms, runlog_bytes);

        summaries.push(campaign::summary_json(&report));
    }

    if let Some(path) = &common.json {
        let json = if summaries.len() == 1 {
            summaries.remove(0).to_pretty()
        } else {
            JsonValue::Array(summaries).to_pretty()
        };
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

/// `load`: the flow-level traffic campaign (hosts × demand × stack on the
/// fat-tree-4 fabric) followed by the 102,400-host throughput probe.
/// `--probe-only` skips the campaign — the CI smoke path. Same
/// stdout/stderr split as [`campaign_cmd`]: everything on stdout is a
/// pure function of the seed (diffable across `--workers`); the wall
/// clock goes to stderr as the `traffic-throughput` `BENCH_JSON` record.
fn load_cmd(args: &[String]) {
    let probe_only = args.iter().any(|a| a == "--probe-only");
    let filtered: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--probe-only")
        .cloned()
        .collect();
    if !probe_only {
        // `campaign_cmd` handles `--shard`/`--state`/`--resume` itself;
        // forward everything but the probe flag.
        let mut forwarded = vec!["load".to_string()];
        forwarded.extend_from_slice(&filtered);
        campaign_cmd(&forwarded);
    }
    let flagged: Vec<String> = filtered
        .iter()
        .filter(|a| a.as_str() != "--resume")
        .cloned()
        .collect();
    let common = CommonArgs::parse(&flagged, CAMPAIGN_FLAGS).unwrap_or_else(|e| {
        eprintln!("load: {e}");
        usage()
    });
    throughput_probe(common.seed);
}

/// Runs the ≥100k-host flow-level scenario end-to-end and reports the
/// aggregation leverage: how far the flow-level wall clock sits below a
/// per-packet extrapolation. The extrapolation charges one engine event
/// per aggregated packet — a deliberate *underestimate* of per-packet
/// simulation (every real packet crosses several hops), so the printed
/// speedup is a floor.
fn throughput_probe(seed: u64) {
    use tm_core::{DefenseStack, LoadScenario, TrafficLoad};
    use tm_topo::TopoKind;

    let scenario = LoadScenario::new(
        TopoKind::FatTree { k: 4 },
        DefenseStack::TopoGuardPlus,
        TrafficLoad::steady(12_800, 2.0),
        seed,
    );
    // tm-lint: allow(wall-clock) -- the probe's wall time is the perf-trajectory record; stderr only, never in the deterministic report
    let start = std::time::Instant::now();
    let out = tm_core::load::run(&scenario);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Deterministic: counters are a pure function of the seed, and the
    // speedup is a ratio of counters (wall cancels out of the model).
    let speedup =
        (out.events_processed + out.packets_aggregated) as f64 / out.events_processed as f64;
    println!("traffic throughput probe: fat-tree-4, 12800 hosts/edge, steady-2, topoguard-plus, seed {seed:#x}");
    println!("  virtual hosts       {}", out.hosts_virtual);
    println!("  flows offered       {}", out.flows_offered);
    println!("  packets aggregated  {}", out.packets_aggregated);
    println!("  packets expanded    {}", out.packets_expanded);
    println!("  packet-ins          {}", out.packet_ins);
    println!("  events processed    {}", out.events_processed);
    println!("  alerts              {}", out.alerts_total);
    println!("  flow-level speedup  {speedup:.0}x vs per-packet extrapolation");

    let record = JsonValue::object(vec![
        ("suite", "traffic-throughput".into()),
        ("hosts", out.hosts_virtual.into()),
        ("flows_offered", out.flows_offered.into()),
        ("packets_aggregated", out.packets_aggregated.into()),
        ("packets_expanded", out.packets_expanded.into()),
        ("packet_ins", out.packet_ins.into()),
        ("events_processed", out.events_processed.into()),
        ("wall_ms", wall_ms.into()),
        ("extrapolated_wall_ms", (wall_ms * speedup).into()),
        ("speedup", speedup.into()),
    ]);
    eprintln!("BENCH_JSON {}", record.to_compact());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(id) = args.first() else { usage() };
    if id == "campaign" {
        campaign_cmd(&args[1..]);
        return;
    }
    if id == "matrix" && args.iter().any(|a| a == "--topo") {
        // Topology-parameterized variant: runs as a multi-seed campaign so
        // verdicts come with ± CI and output is worker-count independent.
        topo_matrix_cmd(&args[1..]);
        return;
    }
    if id == "scale" {
        // Alias for `campaign scale`: the datacenter-fabric soak grid.
        let mut forwarded = vec!["scale".to_string()];
        forwarded.extend_from_slice(&args[1..]);
        campaign_cmd(&forwarded);
        return;
    }
    if id == "load" {
        load_cmd(&args[1..]);
        return;
    }

    let common = CommonArgs::parse(&args[1..], &[]).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    });
    let trials = common.trials;
    let seed = common.seed;
    let json_path = common.json;

    match id.as_str() {
        "table1" => println!("{}", tables::table1(seed)),
        "table2" => println!("{}", tables::table2()),
        "table3" => println!("{}", tables::table3(seed)),
        "fig4" => println!("{}", figures::fig4(seed, trials.max(1000))),
        // Figs. 5-8 come from the same trial batch.
        "fig5" | "fig6" | "fig7" | "fig8" => println!("{}", figures::figs5_to_8(seed, trials)),
        "fig10" => println!("{}", figures::fig10(seed, 100)),
        "fig11" | "fig13" => println!("{}", figures::fig11(seed)),
        "fig12" => {
            println!("{}", figures::fig12(seed));
            println!("alert log:");
            for line in figures::fig12_alerts(seed).iter().take(6) {
                println!("  {line}");
            }
        }
        "matrix" => {
            let entries = matrix::run_matrix(seed);
            println!("{}", matrix::render(&entries));
            write_json(&json_path, &entries);
        }
        "matrix_extended" => {
            let entries = matrix::run_matrix_extended(seed);
            println!("{}", matrix::render(&entries));
            write_json(&json_path, &entries);
        }
        "fault_matrix" => {
            // The detection matrix re-run under each degraded-network
            // profile: does detection survive loss, jitter, congestion,
            // and switch restarts?
            let mut all = Vec::new();
            for profile in tm_core::FaultProfile::MATRIX_SWEEP {
                println!(
                    "DETECTION MATRIX under fault profile: {}\n",
                    profile.label()
                );
                let entries = matrix::run_matrix_under(profile, seed);
                println!("{}", matrix::render(&entries));
                all.extend(entries);
            }
            write_json(&json_path, &all);
        }
        "scan_detection" => println!("{}", sweeps::scan_detection()),
        "alert_flood" => println!("{}", sweeps::alert_flood(seed)),
        "downtime" => println!("{}", sweeps::downtime_windows(80.0)),
        "metrics" => println!("{}", metrics::metrics_report(seed)),
        "ablation_lli" => println!("{}", ablation::lli_fence_sweep(seed)),
        "ablation_amnesia" => println!("{}", ablation::amnesia_hold_sweep(seed)),
        "ablation_timeout" => println!("{}", ablation::probe_timeout_sweep(seed)),
        "ablations" => {
            println!("{}", ablation::lli_fence_sweep(seed));
            println!("{}", ablation::amnesia_hold_sweep(seed));
            println!("{}", ablation::probe_timeout_sweep(seed));
        }
        "all" => {
            println!("{}", tables::table1(seed));
            println!("{}", tables::table2());
            println!("{}", tables::table3(seed));
            println!("{}", figures::fig4(seed, 1000));
            println!("{}", figures::figs5_to_8(seed, trials));
            println!("{}", figures::fig10(seed, 100));
            println!("{}", figures::fig11(seed));
            println!("{}", figures::fig12(seed));
            for line in figures::fig12_alerts(seed).iter().take(6) {
                println!("  {line}");
            }
            println!();
            println!("DETECTION MATRIX (headline result)\n");
            let entries = matrix::run_matrix(seed);
            println!("{}", matrix::render(&entries));
            println!("{}", sweeps::scan_detection());
            println!("{}", sweeps::alert_flood(seed));
            println!("{}", sweeps::downtime_windows(80.0));
            println!("{}", ablation::lli_fence_sweep(seed));
            println!("{}", ablation::amnesia_hold_sweep(seed));
            println!("{}", ablation::probe_timeout_sweep(seed));
            println!("{}", metrics::metrics_report(seed));
        }
        _ => usage(),
    }
}
