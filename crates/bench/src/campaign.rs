//! Registry adapters exposing the workspace's real scenarios to the
//! `tm-campaign` runner, plus the machine-readable summary emission.
//!
//! Each adapter wraps one `tm_core` scenario (or a sampling model) as a
//! [`Scenario`]: a typed parameter grid plus a `(grid point, seed) →
//! metrics` closure. The closure must stay a pure function of its two
//! arguments — the campaign runner derives per-run seeds itself and
//! relies on that purity for worker-count-independent output.

use attacks::{IdentChangeModel, ProbeKind};
use controller::ControllerProfile;
use sdn_types::{Duration, IpAddr};
use tm_campaign::{Axis, CampaignReport, Metrics, Registry, Scenario};
use tm_core::floodsc::{self, FloodScenario};
use tm_core::hijack::{self, HijackScenario};
use tm_core::linkfab::{self, LinkFabScenario, RelayMode};
use tm_core::load::{self, LoadScenario, TrafficLoad};
use tm_core::robustness::{self, FaultProfile, RobustnessScenario};
use tm_core::scale::{self, ScaleScenario};
use tm_core::DefenseStack;
use tm_rand::StdRng;
use tm_stats::{quantile, Summary};
use tm_topo::TopoKind;

use crate::json::JsonValue;

/// The scenarios cheap enough for the CI smoke campaign (sampling models,
/// no full simulation): run in seconds even at several seeds per cell.
pub const SMOKE_SCENARIOS: [&str; 2] = ["probe-overhead", "ident-change"];

/// Default topology grid for the `fabric-matrix` campaign: two kinds at
/// two sizes each, so a verdict flip between a small and a large fabric
/// of the same kind is visible in one run.
pub const FABRIC_MATRIX_TOPOS: [&str; 4] = ["fat-tree-4", "fat-tree-8", "ring-4x2", "ring-8x2"];

/// The attack families every fabric-matrix cell may name.
pub const FABRIC_MATRIX_ATTACKS: [&str; 5] = [
    "naive-relay",
    "oob-amnesia",
    "oob-stealthy",
    "in-band",
    "port-probing-hijack",
];

/// Default attack grid for the `fabric-matrix` campaign (the paper's four
/// matrix rows).
pub const FABRIC_MATRIX_DEFAULT_ATTACKS: [&str; 4] = [
    "naive-relay",
    "oob-amnesia",
    "in-band",
    "port-probing-hijack",
];

/// Default defense-stack grid for the `fabric-matrix` campaign (the
/// paper's five matrix columns).
pub const FABRIC_MATRIX_STACKS: [&str; 5] =
    ["none", "topoguard", "sphinx", "tg-sphinx", "topoguard-plus"];

/// The defense-stack names [`parse_stack`] understands (campaign naming).
const KNOWN_STACKS: [&str; 6] = [
    "none",
    "topoguard",
    "sphinx",
    "tg-sphinx",
    "topoguard-plus",
    "tg-plus-binding",
];

/// The demand labels the `load` campaign's cells understand:
/// `steady-<rate>` / `bursty-<rate>` with `<rate>` in flows/host/s.
/// Unknown labels fall back to a light steady trickle so a typo degrades
/// to a near-idle cell instead of a panic.
fn parse_demand(label: &str) -> (&'static str, f64) {
    let (pattern, rate) = match label.rsplit_once('-') {
        Some((p, r)) => (p, r.parse().unwrap_or(0.1)),
        None => (label, 0.1),
    };
    match pattern {
        "bursty" => ("bursty", rate),
        _ => ("steady", rate),
    }
}

fn parse_load(hosts: &str, demand: &str) -> TrafficLoad {
    let hosts: u32 = hosts.parse().unwrap_or(64);
    match parse_demand(demand) {
        ("bursty", rate) => TrafficLoad::bursty(hosts, rate),
        (_, rate) => TrafficLoad::steady(hosts, rate),
    }
}

fn parse_stack(name: &str) -> DefenseStack {
    match name {
        "topoguard" => DefenseStack::TopoGuard,
        "sphinx" => DefenseStack::Sphinx,
        "tg-sphinx" => DefenseStack::TopoGuardSphinx,
        "topoguard-plus" => DefenseStack::TopoGuardPlus,
        "tg-plus-binding" => DefenseStack::TopoGuardPlusBinding,
        _ => DefenseStack::None,
    }
}

/// The three fault-robustness campaigns (full Fig. 9 simulations under a
/// degraded network). Heavier than [`SMOKE_SCENARIOS`]; the CI pipeline
/// runs them at reduced seed counts.
pub const FAULT_SCENARIOS: [&str; 3] = [
    "lli-under-jitter",
    "cmm-under-flaps",
    "discovery-under-loss",
];

fn fault_counter(metrics: &tm_telemetry::MetricsSnapshot, name: &str) -> f64 {
    metrics.counter(name).unwrap_or(0) as f64
}

/// Shared metric block for the robustness campaigns: false-positive
/// counts plus the `netsim.fault.*` injection counters attributing the
/// degradation the run actually experienced.
fn robustness_metrics(outcome: &tm_core::RobustnessOutcome) -> Metrics {
    Metrics::new()
        .with("alerts_total", outcome.alerts_total as f64)
        .with("lli_false_positives", outcome.lli_alerts as f64)
        .with("cmm_false_positives", outcome.cmm_alerts as f64)
        .with("link_false_positives", outcome.link_alerts as f64)
        .with("links_discovered", outcome.links_discovered as f64)
        .with("benign_pings_ok", outcome.benign_pings_ok as f64)
        .with(
            "fault_loss_drops",
            fault_counter(&outcome.metrics, "netsim.fault.loss_drops"),
        )
        .with(
            "fault_latency_spikes",
            fault_counter(&outcome.metrics, "netsim.fault.latency_spikes"),
        )
        .with(
            "fault_link_flaps",
            fault_counter(&outcome.metrics, "netsim.fault.link_flaps"),
        )
}

/// Builds the `fabric-matrix` scenario over explicit topology / attack /
/// stack grids. Every label is validated up front so a typo fails the
/// whole campaign loudly instead of silently degrading one cell to a
/// default. The run closure is a pure function of `(grid point, seed)` —
/// the fabric itself is a pure function of its parameters and actor
/// placement comes from the spec's forked attacker stream — so campaign
/// output is byte-identical at any `--workers` count.
pub fn fabric_matrix_scenario(
    topos: &[&str],
    attacks: &[&str],
    stacks: &[&str],
) -> Result<Scenario, String> {
    for label in topos {
        if TopoKind::from_label(label).is_none() {
            return Err(format!(
                "unknown topology label `{label}` (examples: fat-tree-4, core-edge-2x12x2, linear-4x2, ring-4x2)"
            ));
        }
    }
    for attack in attacks {
        if !FABRIC_MATRIX_ATTACKS.contains(attack) {
            return Err(format!(
                "unknown attack `{attack}` (known: {})",
                FABRIC_MATRIX_ATTACKS.join(", ")
            ));
        }
    }
    for stack in stacks {
        if !KNOWN_STACKS.contains(stack) {
            return Err(format!(
                "unknown defense stack `{stack}` (known: {})",
                KNOWN_STACKS.join(", ")
            ));
        }
    }
    if topos.is_empty() || attacks.is_empty() || stacks.is_empty() {
        return Err("fabric-matrix needs at least one topology, attack, and stack".to_string());
    }
    Ok(Scenario::new(
        "fabric-matrix",
        "Attack × defense detection matrix on generated fabrics (topology-parameterized §VII)",
        vec![
            Axis::new("topology", topos),
            Axis::new("attack", attacks),
            Axis::new("stack", stacks),
        ],
        fabric_matrix_cell,
    ))
}

fn fabric_matrix_cell(point: &tm_campaign::GridPoint, seed: u64) -> Metrics {
    let kind = point
        .get("topology")
        .and_then(TopoKind::from_label)
        .unwrap_or(TopoKind::Linear {
            switches: 4,
            hosts_per_switch: 2,
        });
    let stack = parse_stack(point.get("stack").unwrap_or("none"));
    match point.get("attack") {
        Some("port-probing-hijack") => {
            let outcome = hijack::run(&HijackScenario {
                victim_rejoins: false, // measure the stealth window itself
                ..HijackScenario::on_fabric(kind, stack, seed)
            });
            Metrics::new()
                .with("succeeded", f64::from(u8::from(outcome.hijack_succeeded())))
                .with(
                    "detected",
                    f64::from(u8::from(outcome.alerts_before_rejoin > 0)),
                )
                .with("alerts_total", outcome.alerts_total as f64)
                .with(
                    "client_pings_during_hijack",
                    outcome.client_pings_during_hijack as f64,
                )
        }
        attack => {
            let mode = match attack {
                Some("naive-relay") => RelayMode::NaiveNoAmnesia,
                Some("oob-stealthy") => RelayMode::OutOfBandStealthy,
                Some("in-band") => RelayMode::InBand,
                _ => RelayMode::OutOfBand,
            };
            let outcome = linkfab::run(&LinkFabScenario::on_fabric(mode, kind, stack, seed));
            Metrics::new()
                .with("succeeded", f64::from(u8::from(outcome.link_established)))
                .with("detected", f64::from(u8::from(outcome.detected())))
                .with("alerts_total", outcome.alerts_total as f64)
                .with("benign_pings_ok", outcome.benign_pings_ok as f64)
        }
    }
}

/// The full campaign registry over the workspace's scenarios.
pub fn registry() -> Registry {
    let mut r = Registry::new();
    let mut add = |s: Scenario| {
        // Names are compile-time constants below; duplicates are a bug.
        if let Err(e) = r.register(s) {
            unreachable!("campaign registry: {e}");
        }
    };

    add(Scenario::new(
        "probe-overhead",
        "Table I liveness probe overhead model, 1000 scans per run",
        vec![Axis::new(
            "probe",
            &["icmp-ping", "tcp-syn", "arp-ping", "idle-scan"],
        )],
        |point, seed| {
            let kind = match point.get("probe") {
                Some("tcp-syn") => ProbeKind::TcpSyn { port: 80 },
                Some("arp-ping") => ProbeKind::ArpPing,
                Some("idle-scan") => ProbeKind::IdleScan {
                    zombie: IpAddr::new(10, 0, 0, 9),
                    port: 80,
                },
                _ => ProbeKind::IcmpPing,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<f64> = (0..1000)
                .map(|_| kind.sample_overhead(&mut rng).as_millis_f64())
                .collect();
            let s = Summary::of(&samples);
            Metrics::new()
                .with("overhead_mean_ms", s.mean)
                .with("overhead_sd_ms", s.sd)
                .with("overhead_q95_ms", quantile(&samples, 0.95).unwrap_or(0.0))
        },
    ));

    add(Scenario::new(
        "ident-change",
        "Fig. 4 ifconfig identifier-change timing model, 1000 trials per run",
        vec![Axis::new("op", &["ident-change", "bare-cycle"])],
        |point, seed| {
            let model = IdentChangeModel::paper_default();
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<f64> = (0..1000)
                .map(|_| {
                    if point.get("op") == Some("bare-cycle") {
                        model.sample_bare_cycle(&mut rng).as_millis_f64()
                    } else {
                        model.sample_ident_change(&mut rng).as_millis_f64()
                    }
                })
                .collect();
            let s = Summary::of(&samples);
            Metrics::new()
                .with("latency_mean_ms", s.mean)
                .with("latency_q99_ms", quantile(&samples, 0.99).unwrap_or(0.0))
                .with("latency_max_ms", s.max)
        },
    ));

    add(Scenario::new(
        "hijack",
        "Port Probing hijack (§IV-B) across defense stacks, full simulation",
        vec![Axis::new(
            "stack",
            &["none", "topoguard", "sphinx", "tg-sphinx", "topoguard-plus"],
        )],
        |point, seed| {
            let stack = parse_stack(point.get("stack").unwrap_or("none"));
            let outcome = hijack::run(&HijackScenario::new(stack, seed));
            let mut m = Metrics::new()
                .with(
                    "hijack_succeeded",
                    f64::from(u8::from(outcome.hijack_succeeded())),
                )
                .with(
                    "undetected_before_rejoin",
                    f64::from(u8::from(outcome.undetected_before_rejoin())),
                )
                .with("alerts_total", outcome.alerts_total as f64)
                .with(
                    "client_pings_during_hijack",
                    outcome.client_pings_during_hijack as f64,
                );
            if let Some(ms) = outcome.detect_delay_ms() {
                m.push("detect_delay_ms", ms);
            }
            if let Some(ms) = outcome.iface_up_delay_ms() {
                m.push("iface_up_delay_ms", ms);
            }
            if let Some(ms) = outcome.controller_ack_delay_ms() {
                m.push("controller_ack_delay_ms", ms);
            }
            m
        },
    ));

    add(Scenario::new(
        "linkfab",
        "Port Amnesia link fabrication (§IV-A) on the Fig. 1 topology",
        vec![
            Axis::new("mode", &["naive-relay", "oob-amnesia", "oob-stealthy"]),
            Axis::new("stack", &["topoguard", "topoguard-plus"]),
        ],
        |point, seed| {
            let mode = match point.get("mode") {
                Some("naive-relay") => RelayMode::NaiveNoAmnesia,
                Some("oob-stealthy") => RelayMode::OutOfBandStealthy,
                _ => RelayMode::OutOfBand,
            };
            let stack = parse_stack(point.get("stack").unwrap_or("topoguard"));
            let outcome = linkfab::run(&LinkFabScenario::new(mode, stack, seed));
            Metrics::new()
                .with(
                    "link_established",
                    f64::from(u8::from(outcome.link_established)),
                )
                .with("detected", f64::from(u8::from(outcome.detected())))
                .with("alerts_total", outcome.alerts_total as f64)
                .with("bridged_frames", outcome.bridged_frames as f64)
                .with("benign_pings_ok", outcome.benign_pings_ok as f64)
        },
    ));

    add(Scenario::new(
        "discovery-profiles",
        "Table III discovery cadence and link expiry per controller profile",
        vec![Axis::new(
            "controller",
            &["floodlight", "pox", "opendaylight"],
        )],
        |point, seed| {
            let profile = match point.get("controller") {
                Some("pox") => ControllerProfile::POX,
                Some("opendaylight") => ControllerProfile::OPENDAYLIGHT,
                _ => ControllerProfile::FLOODLIGHT,
            };
            let (cadence_s, expiry_s) = crate::tables::measure_profile(profile, seed);
            Metrics::new()
                .with("cadence_s", cadence_s)
                .with("expiry_s", expiry_s)
        },
    ));

    add(Scenario::new(
        "alert-flood",
        "Alert flooding (§IV-B) under TopoGuard: alert volume vs spoof rate",
        vec![Axis::new("rate", &["1", "5", "10", "20", "50"])],
        |point, seed| {
            let rate: u64 = point.get("rate").and_then(|v| v.parse().ok()).unwrap_or(20);
            let outcome = floodsc::run(&FloodScenario {
                spoof_rate_per_sec: rate,
                run_for: Duration::from_secs(20),
                ..FloodScenario::new(DefenseStack::TopoGuard, seed)
            });
            Metrics::new()
                .with("spoofs_sent", outcome.spoofs_sent as f64)
                .with("alerts_total", outcome.alerts_total as f64)
                .with("alerts_per_sec", outcome.alerts_per_sec)
                .with(
                    "identities_implicated",
                    outcome.identities_implicated as f64,
                )
        },
    ));

    add(Scenario::new(
        "lli-under-jitter",
        "LLI false positives on a benign Fig. 9 network under trunk jitter spikes (§VIII-A robustness)",
        vec![Axis::new("spike_ms", &["0", "2", "5"])],
        |point, seed| {
            let spike_ms: u16 = point
                .get("spike_ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            // Defaults: 240 s run, jitter active from 150 s — after the
            // LLI's 10-sample baseline has formed at the 15 s LLDP cadence.
            let outcome = robustness::run(&RobustnessScenario::new(
                DefenseStack::TopoGuardPlus,
                FaultProfile::TrunkJitter { spike_ms },
                seed,
            ));
            robustness_metrics(&outcome)
        },
    ));

    add(Scenario::new(
        "cmm-under-flaps",
        "CMM false positives on a benign Fig. 9 network while a host port flaps (§VIII-B robustness)",
        vec![Axis::new("flaps", &["0", "2", "5", "10"])],
        |point, seed| {
            let count: u8 = point.get("flaps").and_then(|v| v.parse().ok()).unwrap_or(0);
            // Flaps are fast events; a 60 s run with a 2 s flap cadence
            // from t=20 s exercises them all.
            let outcome = robustness::run(&RobustnessScenario {
                run_for: Duration::from_secs(60),
                fault_from: Duration::from_secs(20),
                fault_until: Duration::from_secs(60),
                ..RobustnessScenario::new(
                    DefenseStack::TopoGuardPlus,
                    FaultProfile::HostPortFlaps {
                        count,
                        period_ms: 2000,
                    },
                    seed,
                )
            });
            robustness_metrics(&outcome)
        },
    ));

    add(Scenario::new(
        "discovery-under-loss",
        "Topology discovery convergence on a benign Fig. 9 network under trunk packet loss",
        vec![Axis::new("loss_pct", &["0", "10", "30", "50"])],
        |point, seed| {
            let pct: u8 = point
                .get("loss_pct")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            // Loss starts almost immediately: the question is whether LLDP
            // discovery still converges to the 6 ground-truth directed
            // links by the end of a 60 s run.
            let outcome = robustness::run(&RobustnessScenario {
                run_for: Duration::from_secs(60),
                fault_from: Duration::from_secs(5),
                fault_until: Duration::from_secs(60),
                ..RobustnessScenario::new(
                    DefenseStack::TopoGuardPlus,
                    FaultProfile::TrunkLoss { pct },
                    seed,
                )
            });
            robustness_metrics(&outcome)
        },
    ));

    add(Scenario::new(
        "scale",
        "Engine scale soak: generated fabrics under pure control-plane load, 1 simulated second",
        vec![
            Axis::new(
                "topology",
                &["linear-4", "fat-tree-4", "fat-tree-8", "core-edge-4x96x1"],
            ),
            Axis::new("stack", &["none", "topoguard-plus"]),
        ],
        |point, seed| {
            let topo = point
                .get("topology")
                .and_then(TopoKind::from_label)
                .unwrap_or(TopoKind::Linear {
                    switches: 4,
                    hosts_per_switch: 1,
                });
            let stack = parse_stack(point.get("stack").unwrap_or("none"));
            let outcome = scale::run(&ScaleScenario::new(topo, stack, seed));
            Metrics::new()
                .with("events_per_sim_sec", outcome.events_per_sim_sec)
                .with("events_processed", outcome.events_processed as f64)
                .with("links_discovered", outcome.links_discovered as f64)
                .with("alerts_total", outcome.alerts_total as f64)
                .with("switches", outcome.switches as f64)
        },
    ));

    add(Scenario::new(
        "load",
        "Flow-level traffic soak on the fat-tree-4 fabric: hosts/edge x demand x stack, 6 simulated seconds (hosts=12800 is the 102,400-host cell)",
        vec![
            // Per-edge virtual hosts; the fabric has 8 edges, so the axis
            // spans 6,400 -> 102,400 total hosts. fat-tree-8 is deliberately
            // absent: its ARP floods Packet-In at every one of 80 switches,
            // ~10x the wall per host for the same detector coverage.
            Axis::new("hosts", &["800", "3200", "12800"]),
            Axis::new("demand", &["steady-0.5", "bursty-2"]),
            Axis::new("stack", &["none", "topoguard-plus"]),
        ],
        |point, seed| {
            let traffic = parse_load(
                point.get("hosts").unwrap_or("800"),
                point.get("demand").unwrap_or("steady-0.5"),
            );
            let stack = parse_stack(point.get("stack").unwrap_or("none"));
            let outcome = load::run(&LoadScenario::new(
                TopoKind::FatTree { k: 4 },
                stack,
                traffic,
                seed,
            ));
            Metrics::new()
                .with("hosts_virtual", outcome.hosts_virtual as f64)
                .with("flows_offered", outcome.flows_offered as f64)
                .with("packets_aggregated", outcome.packets_aggregated as f64)
                .with("packets_expanded", outcome.packets_expanded as f64)
                .with("aggregation_ratio", outcome.aggregation_ratio())
                .with("packet_ins", outcome.packet_ins as f64)
                .with("events_processed", outcome.events_processed as f64)
                .with("alerts_total", outcome.alerts_total as f64)
        },
    ));

    match fabric_matrix_scenario(
        &FABRIC_MATRIX_TOPOS,
        &FABRIC_MATRIX_DEFAULT_ATTACKS,
        &FABRIC_MATRIX_STACKS,
    ) {
        Ok(s) => add(s),
        // The default grids above are compile-time constants drawn from
        // the validated vocabularies; a failure here is a bug in this file.
        Err(e) => unreachable!("fabric-matrix default grid: {e}"),
    }

    r
}

/// One `BENCH_JSON` line per (cell, metric): the per-cell records the CI
/// perf-trajectory collector harvests. Deterministic — derived purely
/// from the merged campaign report.
pub fn cell_bench_lines(report: &CampaignReport) -> Vec<String> {
    let mut lines = Vec::new();
    for cell in &report.cells {
        for m in &cell.metrics {
            let record = JsonValue::object(vec![
                ("suite", format!("campaign/{}", report.scenario).into()),
                ("cell", cell.point.label().into()),
                ("metric", m.name.as_str().into()),
                ("n", m.n.into()),
                ("mean", m.mean.into()),
                ("sd", m.sd.into()),
                ("ci_half", m.ci_half.into()),
                ("q50", m.q50.into()),
                ("min", m.min.into()),
                ("max", m.max.into()),
            ]);
            lines.push(format!("BENCH_JSON {}", record.to_compact()));
        }
    }
    lines
}

/// The machine-readable campaign summary (`--json FILE`).
pub fn summary_json(report: &CampaignReport) -> JsonValue {
    JsonValue::object(vec![
        ("scenario", report.scenario.as_str().into()),
        ("description", report.description.as_str().into()),
        ("base_seed", format!("{:#x}", report.base_seed).into()),
        ("seeds", report.seeds.into()),
        ("confidence", report.confidence.into()),
        (
            "cells",
            JsonValue::Array(
                report
                    .cells
                    .iter()
                    .map(|cell| {
                        JsonValue::object(vec![
                            ("cell", cell.point.label().into()),
                            ("ok", cell.ok().into()),
                            ("failed", cell.failures.len().into()),
                            (
                                "metrics",
                                JsonValue::Array(
                                    cell.metrics
                                        .iter()
                                        .map(|m| {
                                            JsonValue::object(vec![
                                                ("name", m.name.as_str().into()),
                                                ("n", m.n.into()),
                                                ("mean", m.mean.into()),
                                                ("sd", m.sd.into()),
                                                ("ci_half", m.ci_half.into()),
                                                ("q50", m.q50.into()),
                                                ("min", m.min.into()),
                                                ("max", m.max.into()),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            (
                                "failures",
                                JsonValue::Array(
                                    cell.failures
                                        .iter()
                                        .map(|(seed, cause)| {
                                            JsonValue::object(vec![
                                                ("seed", format!("{seed:#x}").into()),
                                                ("cause", cause.as_str().into()),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "total_ok",
            (report.total_runs - report.total_failures()).into(),
        ),
        ("total_failed", report.total_failures().into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_campaign::{run_campaign, CampaignSpec};

    #[test]
    fn registry_contains_the_advertised_scenarios() {
        let r = registry();
        for name in [
            "probe-overhead",
            "ident-change",
            "hijack",
            "linkfab",
            "discovery-profiles",
            "alert-flood",
            "lli-under-jitter",
            "cmm-under-flaps",
            "discovery-under-loss",
            "scale",
            "load",
            "fabric-matrix",
        ] {
            assert!(r.get(name).is_some(), "missing scenario {name}");
        }
        for name in SMOKE_SCENARIOS {
            assert!(r.get(name).is_some(), "missing smoke scenario {name}");
        }
        for name in FAULT_SCENARIOS {
            assert!(r.get(name).is_some(), "missing fault scenario {name}");
        }
    }

    #[test]
    fn smoke_scenarios_are_worker_count_independent() {
        let r = registry();
        for name in SMOKE_SCENARIOS {
            let mut spec = CampaignSpec::new(name, 0xD5_2018);
            spec.seeds = 3;
            let serial = run_campaign(&r, &spec).expect("workers=1");
            spec.workers = 2;
            let pooled = run_campaign(&r, &spec).expect("workers=2");
            assert_eq!(
                serial.render(),
                pooled.render(),
                "{name}: output must not depend on worker count"
            );
            assert_eq!(
                cell_bench_lines(&serial),
                cell_bench_lines(&pooled),
                "{name}: BENCH_JSON lines must not depend on worker count"
            );
        }
    }

    #[test]
    fn fault_campaigns_are_worker_count_independent() {
        // The full acceptance sweep (all three scenarios, --workers 1 vs 8)
        // runs via `experiments campaign`; here the cheapest fault campaign
        // (60 s virtual runs) guards the same adapter plumbing — the other
        // two differ only in profile and run length.
        let r = registry();
        let mut spec = CampaignSpec::new("discovery-under-loss", 0xFA_017);
        spec.seeds = 1;
        let serial = run_campaign(&r, &spec).expect("workers=1");
        spec.workers = 2;
        let pooled = run_campaign(&r, &spec).expect("workers=2");
        assert_eq!(
            serial.render(),
            pooled.render(),
            "fault campaign output must not depend on worker count"
        );
        // The telemetry-derived fault counters made it into the report.
        assert!(
            serial.render().contains("fault_loss_drops"),
            "{}",
            serial.render()
        );
    }

    #[test]
    fn fabric_matrix_rejects_bad_labels_up_front() {
        assert!(fabric_matrix_scenario(&["mesh-4"], &["in-band"], &["none"]).is_err());
        assert!(fabric_matrix_scenario(&["ring-4x2"], &["ddos"], &["none"]).is_err());
        assert!(fabric_matrix_scenario(&["ring-4x2"], &["in-band"], &["kitchen-sink"]).is_err());
        assert!(fabric_matrix_scenario(&[], &["in-band"], &["none"]).is_err());
        assert!(fabric_matrix_scenario(
            &FABRIC_MATRIX_TOPOS,
            &FABRIC_MATRIX_DEFAULT_ATTACKS,
            &FABRIC_MATRIX_STACKS
        )
        .is_ok());
    }

    #[test]
    fn fabric_matrix_is_worker_count_independent() {
        // Cheapest fabric cells (hijack runs are ~13 s virtual; the ring
        // and linear fabrics are tiny). The full default grid runs via
        // `experiments matrix --topo`; this guards the adapter plumbing.
        let mut r = Registry::new();
        r.register(
            fabric_matrix_scenario(
                &["ring-4x2", "linear-4x2"],
                &["port-probing-hijack"],
                &["none"],
            )
            .expect("grid"),
        )
        .expect("register");
        let mut spec = CampaignSpec::new("fabric-matrix", 0xFAB);
        spec.seeds = 2;
        let serial = run_campaign(&r, &spec).expect("workers=1");
        spec.workers = 2;
        let pooled = run_campaign(&r, &spec).expect("workers=2");
        assert_eq!(
            serial.render(),
            pooled.render(),
            "fabric-matrix output must not depend on worker count"
        );
        assert_eq!(cell_bench_lines(&serial), cell_bench_lines(&pooled));
        assert!(serial.render().contains("succeeded"), "{}", serial.render());
    }

    #[test]
    fn summary_json_round_trips_totals() {
        let r = registry();
        let mut spec = CampaignSpec::new("probe-overhead", 7);
        spec.seeds = 2;
        let report = run_campaign(&r, &spec).expect("campaign");
        let json = summary_json(&report).to_compact();
        assert!(json.contains(r#""scenario":"probe-overhead""#), "{json}");
        assert!(json.contains(r#""total_failed":0"#), "{json}");
        assert!(json.contains(r#""base_seed":"0x7""#), "{json}");
    }
}
