//! The in-house timing harness (the workspace's replacement for
//! `criterion`).
//!
//! Each `[[bench]]` target is a plain `main()` binary (`harness = false`)
//! that drives a [`Bench`]. The measurement protocol is deliberately
//! simple and fully described here so numbers are interpretable:
//!
//! 1. **Warm up** the closure for ~20 ms so caches, branch predictors and
//!    lazy allocations settle before anything is recorded.
//! 2. **Calibrate** an iteration count so each timed sample spans at
//!    least ~2 ms, amortising clock-read overhead for nanosecond-scale
//!    bodies.
//! 3. Record N samples (default 25) and report the **median**
//!    per-iteration time — robust against scheduler noise in a way a
//!    mean is not — alongside min/max for spread.
//!
//! Every result is printed twice: a human-readable line and a
//! machine-readable JSON line (prefixed `BENCH_JSON`) for scripted
//! collection. `TM_BENCH_SAMPLES` overrides the sample count for quick
//! smoke runs (`TM_BENCH_SAMPLES=3`).

use std::hint::black_box as std_black_box;
// tm-lint: allow-file(wall-clock) -- measuring wall time is this harness's entire purpose; results feed BENCH_JSON, never sim state
use std::time::{Duration, Instant};

use crate::json::JsonValue;

/// Re-exported optimisation barrier; benches wrap inputs and results so
/// the closure body is not optimised away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

const WARMUP: Duration = Duration::from_millis(20);
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);
const DEFAULT_SAMPLES: u32 = 25;

/// A benchmark suite: groups related measurements under one name and
/// carries the sampling configuration.
pub struct Bench {
    suite: String,
    samples: u32,
}

/// The summary statistics of one measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Median per-iteration time in nanoseconds.
    pub median_ns: u64,
    /// Fastest sample's per-iteration time.
    pub min_ns: u64,
    /// Slowest sample's per-iteration time.
    pub max_ns: u64,
    /// Number of samples recorded.
    pub samples: u32,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
}

impl Bench {
    /// Creates a suite. `TM_BENCH_SAMPLES` overrides the default sample
    /// count (25) process-wide.
    pub fn new(suite: &str) -> Self {
        let samples = std::env::var("TM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SAMPLES)
            .max(1);
        Bench {
            suite: suite.to_string(),
            samples,
        }
    }

    /// Overrides the sample count for this suite (expensive end-to-end
    /// benches use fewer samples).
    pub fn samples(mut self, n: u32) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Measures `f` called back-to-back (the criterion `iter` shape).
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Summary {
        // Warmup, also producing a per-iteration estimate for calibration.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1)).max(1);
        let iters = (MIN_SAMPLE_TIME.as_nanos() as u64 / est_ns).clamp(1, 10_000_000);

        let mut per_iter_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push((start.elapsed().as_nanos() as u64) / iters);
        }
        self.report(name, summarize(per_iter_ns, iters))
    }

    /// Measures `f` with a fresh, untimed `setup()` product per iteration
    /// (the criterion `iter_batched` shape). Each sample is a single
    /// timed call, so this suits bodies well above clock-read cost.
    pub fn bench_with_setup<S, T>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) -> Summary {
        // Two warmup runs are enough for the coarse bodies this shape is
        // used for (whole-simulation and clone-heavy benches).
        for _ in 0..2 {
            black_box(f(setup()));
        }
        let mut per_iter_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            per_iter_ns.push(start.elapsed().as_nanos() as u64);
        }
        self.report(name, summarize(per_iter_ns, 1))
    }

    fn report(&self, name: &str, summary: Summary) -> Summary {
        println!(
            "{suite}/{name}: median {med} (min {min}, max {max}; {n} samples x {iters} iters)",
            suite = self.suite,
            med = format_ns(summary.median_ns),
            min = format_ns(summary.min_ns),
            max = format_ns(summary.max_ns),
            n = summary.samples,
            iters = summary.iters_per_sample,
        );
        let record = JsonValue::object(vec![
            ("suite", self.suite.as_str().into()),
            ("bench", name.into()),
            ("median_ns", summary.median_ns.into()),
            ("min_ns", summary.min_ns.into()),
            ("max_ns", summary.max_ns.into()),
            ("samples", u64::from(summary.samples).into()),
            ("iters_per_sample", summary.iters_per_sample.into()),
        ]);
        println!("BENCH_JSON {}", record.to_compact());
        summary
    }
}

/// Reduces raw per-iteration samples to the reported summary.
fn summarize(mut per_iter_ns: Vec<u64>, iters_per_sample: u64) -> Summary {
    assert!(!per_iter_ns.is_empty());
    per_iter_ns.sort_unstable();
    Summary {
        median_ns: per_iter_ns[per_iter_ns.len() / 2],
        min_ns: per_iter_ns[0],
        max_ns: *per_iter_ns.last().unwrap(),
        samples: per_iter_ns.len() as u32,
        iters_per_sample,
    }
}

/// Scales nanoseconds to the most readable unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_picks_median_and_extremes() {
        let s = summarize(vec![30, 10, 20, 50, 40], 7);
        assert_eq!(s.median_ns, 30);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 50);
        assert_eq!(s.samples, 5);
        assert_eq!(s.iters_per_sample, 7);
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(42), "42ns");
        assert_eq!(format_ns(42_000), "42.000us");
        assert_eq!(format_ns(42_000_000), "42.000ms");
        assert_eq!(format_ns(42_000_000_000), "42.000s");
    }

    #[test]
    fn bench_measures_a_real_closure() {
        let bench = Bench::new("harness_test").samples(3);
        let mut acc = 0u64;
        let s = bench.bench("accumulate", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert!(s.median_ns > 0 || s.iters_per_sample > 1);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn bench_with_setup_excludes_setup() {
        let bench = Bench::new("harness_test").samples(3);
        let s = bench.bench_with_setup("sum_vec", || vec![1u64; 4096], |v| v.iter().sum::<u64>());
        assert_eq!(s.iters_per_sample, 1);
        assert_eq!(s.samples, 3);
    }
}
