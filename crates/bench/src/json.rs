//! A tiny JSON writer (the workspace's replacement for `serde_json`).
//!
//! The experiment driver only ever *emits* JSON — detection-matrix dumps
//! and benchmark records — so a write-only value tree with a pretty
//! printer covers everything. No parsing, no derive, no reflection.

use std::fmt::Write as _;

/// A JSON value assembled by hand at the emission site.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Integers are kept exact rather than routed through f64.
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    /// Insertion-ordered, matching the order fields are pushed.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders with two-space indentation and a trailing newline, the
    /// same shape `serde_json::to_string_pretty` produced.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders without any whitespace (one record per line for logs).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Int(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Int(n as i64)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Int(n as i64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = JsonValue::object(vec![
            ("name", "a\"b".into()),
            ("n", 3usize.into()),
            ("ok", true.into()),
            ("xs", JsonValue::Array(vec![1i64.into(), 2i64.into()])),
        ]);
        assert_eq!(
            v.to_compact(),
            r#"{"name":"a\"b","n":3,"ok":true,"xs":[1,2]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents_nested_structures() {
        let v = JsonValue::Array(vec![JsonValue::object(vec![("k", 1i64.into())])]);
        assert_eq!(v.to_pretty(), "[\n  {\n    \"k\": 1\n  }\n]");
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        assert_eq!(JsonValue::Array(vec![]).to_pretty(), "[]");
        assert_eq!(JsonValue::Object(vec![]).to_pretty(), "{}");
    }

    #[test]
    fn control_characters_and_non_finite_floats() {
        let v = JsonValue::object(vec![("s", "\u{1}\t".into()), ("f", f64::NAN.into())]);
        assert_eq!(v.to_compact(), r#"{"s":"\u0001\t","f":null}"#);
    }
}
