//! Telemetry-snapshot export: renders a [`MetricsSnapshot`] as the same
//! `BENCH_JSON`-prefixed machine-readable records the timing harness
//! emits, so one log scraper collects both.
//!
//! Everything in a snapshot is derived from simulated time and seeded
//! randomness, so the emitted records are **byte-identical across runs**
//! for the same scenario and seed — the `metrics` experiment is usable as
//! a determinism check from the command line (run it twice, `diff`).

use tm_core::defense::DefenseStack;
use tm_core::{hijack, linkfab};
use tm_telemetry::MetricsSnapshot;

use crate::json::JsonValue;

/// Converts one snapshot into an insertion-ordered JSON record.
///
/// Counters and gauges become objects keyed by metric name (the snapshot
/// is already sorted); each histogram carries its summary statistics and
/// the per-bucket counts against the shared bucket ladder.
pub fn snapshot_to_json(scenario: &str, seed: u64, snap: &MetricsSnapshot) -> JsonValue {
    let counters = JsonValue::Object(
        snap.counters
            .iter()
            .map(|(name, v)| (name.clone(), (*v).into()))
            .collect(),
    );
    let gauges = JsonValue::Object(
        snap.gauges
            .iter()
            .map(|(name, v)| (name.clone(), JsonValue::Int(*v)))
            .collect(),
    );
    let histograms = JsonValue::Array(
        snap.histograms
            .iter()
            .map(|(name, h)| {
                let buckets = JsonValue::Array(
                    h.bounds
                        .iter()
                        .map(|b| JsonValue::Int(*b as i64))
                        .chain(std::iter::once(JsonValue::Null))
                        .zip(h.counts.iter())
                        .map(|(bound, count)| {
                            JsonValue::Object(vec![
                                ("le_ns".to_string(), bound),
                                ("count".to_string(), (*count).into()),
                            ])
                        })
                        .collect(),
                );
                JsonValue::object(vec![
                    ("name", name.as_str().into()),
                    ("count", h.count.into()),
                    ("sum_ns", h.sum.into()),
                    ("min_ns", h.min.into()),
                    ("max_ns", h.max.into()),
                    ("buckets", buckets),
                ])
            })
            .collect(),
    );
    JsonValue::object(vec![
        ("suite", "metrics".into()),
        ("scenario", scenario.into()),
        ("seed", seed.into()),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// Renders one snapshot as a human-readable block plus its `BENCH_JSON`
/// record.
pub fn render_snapshot(scenario: &str, seed: u64, snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("metrics/{scenario} (seed {seed})\n"));
    for line in snap.render().lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!(
        "BENCH_JSON {}\n",
        snapshot_to_json(scenario, seed, snap).to_compact()
    ));
    out
}

/// The `metrics` experiment: runs one representative scenario per family
/// and emits its full telemetry snapshot.
pub fn metrics_report(seed: u64) -> String {
    let mut out = String::new();
    out.push_str("TELEMETRY SNAPSHOTS (deterministic per seed)\n\n");

    let hj = hijack::run(&hijack::HijackScenario::new(
        DefenseStack::TopoGuardSphinx,
        seed,
    ));
    out.push_str(&render_snapshot(
        "hijack/topoguard+sphinx",
        seed,
        &hj.metrics,
    ));
    out.push('\n');

    let lf = linkfab::run(&linkfab::LinkFabScenario::new(
        linkfab::RelayMode::OutOfBand,
        DefenseStack::TopoGuard,
        seed,
    ));
    out.push_str(&render_snapshot(
        "linkfab-fig1/oob/topoguard",
        seed,
        &lf.metrics,
    ));
    out.push('\n');

    let eval = linkfab::run(&linkfab::LinkFabScenario::paper_eval(
        linkfab::RelayMode::OutOfBand,
        DefenseStack::TopoGuardPlus,
        seed,
    ));
    out.push_str(&render_snapshot(
        "linkfab-fig9/oob/topoguard+",
        seed,
        &eval.metrics,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_telemetry::Telemetry;

    #[test]
    fn snapshot_json_is_compact_and_ordered() {
        let t = Telemetry::new();
        t.counter_inc("b.two");
        t.counter_inc("a.one");
        t.gauge_set("g", -3);
        t.observe_ns("h", 1_500);
        let json = snapshot_to_json("test", 7, &t.snapshot()).to_compact();
        // BTreeMap ordering inside the snapshot: a.one before b.two.
        let a = json.find("a.one").expect("a.one present");
        let b = json.find("b.two").expect("b.two present");
        assert!(a < b, "{json}");
        assert!(json.contains(r#""seed":7"#), "{json}");
        assert!(json.contains(r#""g":-3"#), "{json}");
        assert!(json.contains(r#""sum_ns":1500"#), "{json}");
        assert!(json.contains(r#""le_ns":null"#), "overflow bucket: {json}");
    }

    #[test]
    fn render_snapshot_emits_bench_json_line() {
        let t = Telemetry::new();
        t.counter_inc("x");
        let text = render_snapshot("s", 1, &t.snapshot());
        assert!(
            text.lines().any(|l| l.starts_with("BENCH_JSON {")),
            "{text}"
        );
    }
}
