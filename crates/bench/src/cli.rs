//! Shared command-line parsing for the experiment driver.
//!
//! Every `experiments` subcommand accepts the same core flags — `--trials
//! <n>`, `--seed <hex-or-decimal>`, `--json <file>` — parsed here in one
//! place so defaults (and therefore `experiments_output.txt`) stay
//! consistent across subcommands. Subcommands with extra value-taking
//! flags (the campaign runner's `--seeds`/`--workers`/`--confidence`)
//! declare them up front and read them back out of [`CommonArgs::extra`].

use std::str::FromStr;

/// The driver's default base seed (also the paper's publication venue and
/// year, which makes it easy to spot in output).
pub const DEFAULT_SEED: u64 = 0xD5_2018;

/// The driver's default trial count for figure reproductions.
pub const DEFAULT_TRIALS: usize = 200;

/// Parses a `u64` that may be hex (`0x` prefix, case-insensitive) or
/// decimal. Underscore separators are accepted in both forms.
pub fn parse_u64(s: &str) -> Option<u64> {
    let s = s.replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The flags shared by every subcommand, plus any declared extras.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// `--trials <n>` (default [`DEFAULT_TRIALS`]).
    pub trials: usize,
    /// `--seed <hex-or-decimal>` (default [`DEFAULT_SEED`]).
    pub seed: u64,
    /// `--json <file>`: machine-readable dump destination.
    pub json: Option<String>,
    /// Declared subcommand-specific flags, as `(flag, value)` pairs in
    /// command-line order.
    pub extra: Vec<(String, String)>,
}

impl CommonArgs {
    /// Parses `args` (everything after the subcommand id). Flags named in
    /// `extra_value_flags` are collected verbatim into [`CommonArgs::extra`];
    /// anything else unrecognised is an error naming the offending flag.
    pub fn parse(args: &[String], extra_value_flags: &[&str]) -> Result<CommonArgs, String> {
        let mut parsed = CommonArgs {
            trials: DEFAULT_TRIALS,
            seed: DEFAULT_SEED,
            json: None,
            extra: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = || {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag {
                "--trials" => {
                    parsed.trials = value()?
                        .parse()
                        .map_err(|_| format!("--trials: not a count: {}", args[i + 1]))?;
                }
                "--seed" => {
                    parsed.seed = parse_u64(&value()?)
                        .ok_or_else(|| format!("--seed: not hex or decimal: {}", args[i + 1]))?;
                }
                "--json" => parsed.json = Some(value()?),
                _ if extra_value_flags.contains(&flag) => {
                    parsed.extra.push((flag.to_string(), value()?));
                }
                _ => return Err(format!("unknown flag {flag}")),
            }
            i += 2;
        }
        Ok(parsed)
    }

    /// Reads a declared extra flag back out, parsed as `T`; `default` when
    /// the flag was not given.
    pub fn extra_parsed<T: FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.extra.iter().rev().find(|(f, _)| f == flag) {
            None => Ok(default),
            Some((_, v)) => v.parse().map_err(|_| format!("{flag}: cannot parse {v}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_the_historical_hardcoded_values() {
        let parsed = CommonArgs::parse(&[], &[]).expect("empty args");
        assert_eq!(parsed.seed, 0xD5_2018);
        assert_eq!(parsed.trials, 200);
        assert!(parsed.json.is_none());
    }

    #[test]
    fn seed_parses_hex_and_decimal() {
        assert_eq!(parse_u64("0xD5_2018"), Some(0xD5_2018));
        assert_eq!(parse_u64("0Xff"), Some(255));
        assert_eq!(parse_u64("1234"), Some(1234));
        assert_eq!(parse_u64("12_34"), Some(1234));
        assert_eq!(parse_u64("0xZZ"), None);
        assert_eq!(parse_u64("nope"), None);

        let parsed = CommonArgs::parse(&strings(&["--seed", "0xBEEF"]), &[]).expect("hex seed");
        assert_eq!(parsed.seed, 0xBEEF);
        let parsed = CommonArgs::parse(&strings(&["--seed", "99"]), &[]).expect("decimal seed");
        assert_eq!(parsed.seed, 99);
    }

    #[test]
    fn unknown_flags_are_rejected_unless_declared() {
        assert!(CommonArgs::parse(&strings(&["--workers", "4"]), &[]).is_err());
        let parsed = CommonArgs::parse(&strings(&["--workers", "4"]), &["--workers"])
            .expect("declared extra");
        assert_eq!(
            parsed.extra,
            vec![("--workers".to_string(), "4".to_string())]
        );
        assert_eq!(parsed.extra_parsed("--workers", 1usize), Ok(4));
        assert_eq!(parsed.extra_parsed("--seeds", 5usize), Ok(5));
    }

    #[test]
    fn missing_values_and_bad_numbers_are_errors() {
        assert!(CommonArgs::parse(&strings(&["--trials"]), &[]).is_err());
        assert!(CommonArgs::parse(&strings(&["--trials", "many"]), &[]).is_err());
        assert!(CommonArgs::parse(&strings(&["--seed", "0x"]), &[]).is_err());
    }
}
