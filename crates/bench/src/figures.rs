//! Figure reproductions: the Port Probing timing distributions (Figs. 4–8)
//! and the TOPOGUARD+ evaluation series (Figs. 10–13).

use attacks::IdentChangeModel;
use controller::{AlertKind, ControllerConfig, SdnController};
use netsim::Simulator;
use sdn_types::Duration;
use tm_core::hijack::{self, HijackScenario};
use tm_core::linkfab::{self, LinkFabScenario, RelayMode};
use tm_core::testbed;
use tm_core::DefenseStack;
use tm_rand::StdRng;
use tm_stats::Histogram;
use topoguard::Lli;

/// Fig. 4: distribution of the time taken to change network identifiers
/// with `ifconfig` (paper: mean 9.94 ms, heavy tail to ~160 ms).
pub fn fig4(seed: u64, trials: usize) -> String {
    let model = IdentChangeModel::paper_default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hist = Histogram::new(0.0, 60.0, 24);
    for _ in 0..trials {
        hist.record(model.sample_ident_change(&mut rng).as_millis_f64());
    }
    let mut out = format!(
        "FIG 4: identifier change (ifconfig) duration, {trials} trials (paper: mean 9.94 ms, tail to ~160 ms)\n\n"
    );
    out.push_str(&hist.render("ms", 50));
    out
}

/// The four Port Probing timing distributions from one batch of hijack
/// trials (Figs. 5–8), plus the paper's reference means.
pub struct HijackDistributions {
    /// Fig. 7: victim down → final probe start (ms; signed).
    pub final_probe_start: Vec<f64>,
    /// Fig. 8: victim down → probe timeout (attacker knows), ms.
    pub believed_down: Vec<f64>,
    /// Fig. 4 (live): the sampled ifconfig duration in each trial, ms.
    pub ident_change: Vec<f64>,
    /// Fig. 5: victim down → attacker interface up as victim, ms.
    pub iface_up: Vec<f64>,
    /// Fig. 6: victim down → controller acknowledges the attacker, ms.
    pub controller_ack: Vec<f64>,
    /// Trials where the hijack landed.
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
}

/// Runs `trials` hijack scenarios (distinct seeds) and collects the timing
/// distributions behind Figs. 5–8.
pub fn run_hijack_trials(
    base_seed: u64,
    trials: usize,
    stack: DefenseStack,
) -> HijackDistributions {
    let mut d = HijackDistributions {
        final_probe_start: Vec::new(),
        believed_down: Vec::new(),
        ident_change: Vec::new(),
        iface_up: Vec::new(),
        controller_ack: Vec::new(),
        successes: 0,
        trials,
    };
    for i in 0..trials {
        let out = hijack::run(&HijackScenario {
            victim_rejoins: false,
            tail: Duration::from_millis(500),
            ..HijackScenario::new(stack, base_seed + i as u64)
        });
        if let Some(ms) = out.final_probe_start_delay_ms() {
            d.final_probe_start.push(ms);
        }
        if let Some(ms) = out.detect_delay_ms() {
            d.believed_down.push(ms);
        }
        if let Some(dur) = out.timeline.ident_change_duration {
            d.ident_change.push(dur.as_millis_f64());
        }
        if let Some(ms) = out.iface_up_delay_ms() {
            d.iface_up.push(ms);
        }
        if let Some(ms) = out.controller_ack_delay_ms() {
            d.controller_ack.push(ms);
        }
        if out.hijack_succeeded() {
            d.successes += 1;
        }
    }
    d
}

/// Renders Figs. 5–8 from a trial batch.
pub fn figs5_to_8(base_seed: u64, trials: usize) -> String {
    let d = run_hijack_trials(base_seed, trials, DefenseStack::TopoGuardSphinx);
    let mut out = format!(
        "Port Probing timing distributions ({} trials vs TopoGuard+SPHINX, {}/{} hijacks landed)\n",
        trials, d.successes, d.trials
    );

    let render = |title: &str, paper: &str, samples: &[f64], low: f64, high: f64| {
        let mut hist = Histogram::new(low, high, 20);
        hist.record_all(samples);
        format!("\n{title}\n  (paper: {paper})\n{}", hist.render("ms", 40))
    };

    out.push_str(&render(
        "FIG 7: victim down -> start of final (timed-out) probe",
        "begins within ~0.5 ms of the victim going offline on average",
        &d.final_probe_start,
        0.0,
        60.0,
    ));
    out.push_str(&render(
        "FIG 8: victim down -> probe timeout (attacker believes victim down)",
        "attacker realizes ~12 ms after the event on average",
        &d.believed_down,
        30.0,
        100.0,
    ));
    out.push_str(&render(
        "FIG 4 (in-attack): ifconfig identifier change duration",
        "mean 9.94 ms, heavy-tailed",
        &d.ident_change,
        0.0,
        60.0,
    ));
    out.push_str(&render(
        "FIG 5: victim down -> attacker interface up as the victim",
        "mean ~478 ms (dominated by waiting out the probe timeout)",
        &d.iface_up,
        30.0,
        160.0,
    ));
    out.push_str(&render(
        "FIG 6: victim down -> controller acknowledges attacker as victim",
        "mean ~549 ms; virtually instantaneous vs seconds-scale migration windows",
        &d.controller_ack,
        30.0,
        160.0,
    ));
    out.push_str(
        "\nshape notes: our probe loop detects the victim one timeout (35 ms) after the\n\
         first unanswered probe, i.e. tens of milliseconds after the down event, and the\n\
         whole hijack completes in well under a second — leaving nearly the entire\n\
         seconds-scale VM-migration window for impersonation, the paper's conclusion.\n",
    );
    out
}

/// Fig. 10: switch-link latencies measured by the LLI on the Fig. 9
/// testbed (paper: ~5 ms averages with micro-bursts toward 12 ms).
pub fn fig10(seed: u64, samples: usize) -> String {
    let (spec, _ids) = testbed::fig9_spec(DefenseStack::TopoGuardPlus, ControllerConfig::default());
    let mut sim = Simulator::new(spec, seed);
    // 6 directed trunk observations per 15 s round.
    let rounds_needed = samples.div_ceil(6) + 2;
    sim.run_for(Duration::from_secs(15 * rounds_needed as u64));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let lli: &Lli = ctrl.module_as().expect("LLI installed");
    let latencies: Vec<f64> = lli
        .observations
        .iter()
        .take(samples)
        .map(|o| o.latency_ms)
        .collect();
    let mut hist = Histogram::new(0.0, 15.0, 30);
    hist.record_all(&latencies);
    let mut out = format!(
        "FIG 10: switch-internal link latency, first {} LLI measurements\n  (paper: ~5 ms averages, micro-bursts to ~12 ms)\n\n",
        latencies.len()
    );
    out.push_str(&hist.render("ms", 50));
    out
}

/// Fig. 11 + Fig. 13: the LLI threshold trace over a run where a stealthy
/// out-of-band fabricated link appears at t = 60 s, with the resulting
/// alerts.
pub fn fig11(seed: u64) -> String {
    // Reuse the linkfab scenario machinery but keep the simulator so we can
    // extract the LLI series: run a stealthy OOB attack on Fig. 9.
    use attacks::{OobRelayAttacker, RelayConfig};

    let (mut spec, ids) =
        testbed::fig9_spec(DefenseStack::TopoGuardPlus, ControllerConfig::default());
    let mk = |peer| RelayConfig {
        start_after: Duration::from_secs(60),
        ..RelayConfig::oob_stealthy(peer)
    };
    spec.set_host_app(
        ids.attacker_a,
        Box::new(OobRelayAttacker::new(mk(ids.attacker_b))),
    );
    spec.set_host_app(
        ids.attacker_b,
        Box::new(OobRelayAttacker::new(mk(ids.attacker_a))),
    );
    let mut sim = Simulator::new(spec, seed);
    sim.run_for(Duration::from_secs(300));

    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let lli: &Lli = ctrl.module_as().expect("LLI installed");

    let mut out = String::from(
        "FIG 11: measured link latencies and the Q3+3*IQR detection threshold over time\n\
         (fake link via 10 ms out-of-band channel appears at t=60 s)\n\n",
    );
    out.push_str(&format!(
        "{:>9} {:>12} {:>12}  {}\n",
        "t (s)", "latency ms", "threshold", "verdict"
    ));
    for obs in &lli.observations {
        out.push_str(&format!(
            "{:>9.1} {:>12.2} {:>12}  {}{}\n",
            obs.at.as_secs_f64(),
            obs.latency_ms,
            obs.threshold_ms
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "warmup".into()),
            if obs.flagged { "FLAGGED" } else { "ok" },
            if obs.flagged {
                format!("  ({} -> {})", obs.link.src, obs.link.dst)
            } else {
                String::new()
            },
        ));
    }
    out.push_str(&format!(
        "\nLLI detections: {}   fake link in topology at end: {}\n",
        lli.detections,
        ctrl.topology()
            .contains(&controller::DirectedLink::new(ids.port_a, ids.port_b))
            || ctrl
                .topology()
                .contains(&controller::DirectedLink::new(ids.port_b, ids.port_a)),
    ));
    out.push_str("\nFIG 13: alerts raised for the anomalous link latency:\n");
    for alert in ctrl
        .alerts()
        .of_kind(AlertKind::AbnormalLinkLatency)
        .take(4)
    {
        out.push_str(&format!("  {alert}\n"));
    }
    out
}

/// Fig. 12: TOPOGUARD+ alerts for anomalous control messages during an
/// in-band Port Amnesia attack.
pub fn fig12(seed: u64) -> String {
    let outcome = linkfab::run(&LinkFabScenario::paper_eval(
        RelayMode::InBand,
        DefenseStack::TopoGuardPlus,
        seed,
    ));
    let mut out =
        String::from("FIG 12: CMM detections of in-band Port Amnesia (context switching)\n\n");
    out.push_str(&format!(
        "  amnesia cycles performed: {}\n  CMM alerts raised:        {}\n  link established:         {}\n",
        outcome.stats_a.amnesia_cycles + outcome.stats_b.amnesia_cycles,
        outcome.cmm_alerts,
        outcome.link_established,
    ));
    out.push_str("\n(alert text mirrors the paper's log excerpt: \"detected suspicious\n link discovery / Port-Down during LLDP propagation\"; see fig12_alerts)\n");
    out
}

/// Returns the raw CMM alert lines for an in-band attack (the Fig. 12 log
/// excerpt itself).
pub fn fig12_alerts(seed: u64) -> Vec<String> {
    use attacks::{InBandRelayAttacker, RelayConfig};
    let (mut spec, ids) =
        testbed::fig9_spec(DefenseStack::TopoGuardPlus, ControllerConfig::default());
    let cfg_a = RelayConfig {
        start_after: Duration::from_secs(60),
        ..RelayConfig::in_band(ids.attacker_b, ids.attacker_b_mac, ids.attacker_b_ip)
    };
    let cfg_b = RelayConfig {
        start_after: Duration::from_secs(60),
        ..RelayConfig::in_band(ids.attacker_a, ids.attacker_a_mac, ids.attacker_a_ip)
    };
    spec.set_host_app(ids.attacker_a, Box::new(InBandRelayAttacker::new(cfg_a)));
    spec.set_host_app(ids.attacker_b, Box::new(InBandRelayAttacker::new(cfg_b)));
    let mut sim = Simulator::new(spec, seed);
    sim.run_for(Duration::from_secs(120));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    ctrl.alerts()
        .of_kind(AlertKind::AnomalousControlMessage)
        .map(|a| a.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_mean_matches_paper() {
        let d = IdentChangeModel::paper_default();
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..2000)
            .map(|_| d.sample_ident_change(&mut rng).as_millis_f64())
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 9.94).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn hijack_trials_produce_full_distributions() {
        let d = run_hijack_trials(500, 10, DefenseStack::TopoGuardSphinx);
        assert_eq!(d.successes, 10, "all trials should land");
        assert_eq!(d.controller_ack.len(), 10);
        // Ordering invariant per trial batch: detection < iface-up < ack
        // in the means.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&d.believed_down) <= mean(&d.iface_up));
        assert!(mean(&d.iface_up) <= mean(&d.controller_ack));
    }

    #[test]
    fn fig12_alert_text_matches_paper_style() {
        let alerts = fig12_alerts(7);
        assert!(!alerts.is_empty());
        assert!(alerts[0].contains("LLDP"), "{}", alerts[0]);
    }
}
