//! Ablations over the design parameters the paper fixes by fiat:
//!
//! * the LLI's IQR fence multiplier `k` (paper: 3) — trade-off between
//!   catching 10 ms-relay fake links and false-flagging micro-bursts;
//! * the attacker's probe timeout (paper: 35 ms from the 1 % FP quantile)
//!   — trade-off between hijack reaction time and false starts;
//! * the attacker's amnesia hold time (paper: ≥ 16 ms from IEEE 802.3) —
//!   holds below the pulse window minimum never reset the profile and the
//!   attack reverts to the naive relay TopoGuard catches.

use attacks::{OobRelayAttacker, RelayConfig};
use controller::{AlertKind, ControllerConfig, SdnController};
use netsim::Simulator;
use sdn_types::Duration;
use tm_core::testbed;
use tm_core::DefenseStack;
use topoguard::{Cmm, CmmConfig, Lli, LliConfig, TopoGuard, TopoGuardConfig};

/// LLI fence sweep: run the Fig. 9 testbed (no attack, micro-bursty links)
/// and a stealthy OOB attack, for several `k` values; report false flags on
/// real links and detections of the fake link.
pub fn lli_fence_sweep(seed: u64) -> String {
    let mut out =
        String::from("ABLATION: LLI outlier fence (threshold = Q3 + k*IQR; paper uses k = 3)\n\n");
    out.push_str(&format!(
        "{:>6} {:>22} {:>22}\n",
        "k", "benign false flags", "fake-link detections"
    ));
    for k in [1.0, 1.5, 3.0, 6.0, 12.0] {
        // Isolated: a panicking k point becomes a FAILED row, not a crash.
        match tm_campaign::isolate(|| (run_lli(seed, k, false), run_lli(seed, k, true))) {
            Ok((benign, attack)) => {
                out.push_str(&format!("{k:>6} {benign:>22} {attack:>22}\n"));
            }
            Err(cause) => out.push_str(&format!("{k:>6} FAILED({cause})\n")),
        }
    }
    out.push_str(
        "\n(small k false-positives on micro-bursts — the §VIII-A hazard; huge k lets the\n 10 ms relay channel through; k = 3 detects the relay with no benign flags)\n",
    );
    out
}

fn run_lli(seed: u64, k: f64, with_attack: bool) -> u64 {
    let (mut spec, ids) = testbed::fig9_spec(
        DefenseStack::None,
        ControllerConfig {
            sign_lldp: true,
            timestamp_lldp: true,
            echo_interval: Some(Duration::from_secs(1)),
            ..ControllerConfig::default()
        },
    );
    // Hand-built stack so we control the LLI's k.
    let controller = SdnController::new(ControllerConfig {
        sign_lldp: true,
        timestamp_lldp: true,
        echo_interval: Some(Duration::from_secs(1)),
        ..ControllerConfig::default()
    })
    .with_module(Box::new(TopoGuard::new(TopoGuardConfig::default())))
    .with_module(Box::new(Cmm::new(CmmConfig::default())))
    .with_module(Box::new(Lli::new(LliConfig {
        iqr_k: k,
        ..LliConfig::default()
    })));
    spec.set_controller(Box::new(controller));
    if with_attack {
        let mk = |peer| RelayConfig {
            start_after: Duration::from_secs(60),
            ..RelayConfig::oob_stealthy(peer)
        };
        spec.set_host_app(
            ids.attacker_a,
            Box::new(OobRelayAttacker::new(mk(ids.attacker_b))),
        );
        spec.set_host_app(
            ids.attacker_b,
            Box::new(OobRelayAttacker::new(mk(ids.attacker_a))),
        );
    }
    let mut sim = Simulator::new(spec, seed);
    sim.run_for(Duration::from_secs(180));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let lli: &Lli = ctrl.module_as().expect("lli");
    if with_attack {
        // Count only flags on the fake link.
        lli.observations
            .iter()
            .filter(|o| o.flagged && (o.link.src == ids.port_a || o.link.src == ids.port_b))
            .count() as u64
    } else {
        lli.detections
    }
}

/// Amnesia hold-time sweep: how long must the attacker hold its interface
/// down for the profile reset to occur? (IEEE 802.3 pulse window is
/// 16 ± 8 ms; the simulator samples detection in [8 ms, 24 ms).)
pub fn amnesia_hold_sweep(seed: u64) -> String {
    let mut out = String::from(
        "ABLATION: Port Amnesia hold time vs the 802.3 link-pulse window (16 +/- 8 ms)\n\n",
    );
    out.push_str(&format!(
        "{:>12} {:>14} {:>18} {:>16}\n",
        "hold (ms)", "link forged", "TopoGuard alerts", "expected"
    ));
    for (hold_ms, expected) in [
        (4u64, "too short: no reset, caught"),
        (8, "race: sometimes resets"),
        (16, "race: usually resets"),
        (25, "always resets, bypass"),
        (40, "always resets, bypass"),
    ] {
        match tm_campaign::isolate(|| run_amnesia_hold(seed, hold_ms)) {
            Ok((forged, alerts)) => out.push_str(&format!(
                "{hold_ms:>12} {forged:>14} {alerts:>18} {expected:>16}\n"
            )),
            Err(cause) => out.push_str(&format!("{hold_ms:>12} FAILED({cause})\n")),
        }
    }
    out
}

fn run_amnesia_hold(seed: u64, hold_ms: u64) -> (bool, usize) {
    let (mut spec, ids) = testbed::fig1_spec(DefenseStack::TopoGuard, ControllerConfig::default());
    let mk = |peer| RelayConfig {
        hold_down: Duration::from_millis(hold_ms),
        ..RelayConfig::oob(peer)
    };
    spec.set_host_app(
        ids.attacker_a,
        Box::new(OobRelayAttacker::new(mk(ids.attacker_b))),
    );
    spec.set_host_app(
        ids.attacker_b,
        Box::new(OobRelayAttacker::new(mk(ids.attacker_a))),
    );
    let mut sim = Simulator::new(spec, seed);
    sim.run_for(Duration::from_secs(40));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let forged = ctrl
        .topology()
        .contains(&controller::DirectedLink::new(ids.port_a, ids.port_b))
        || ctrl
            .topology()
            .contains(&controller::DirectedLink::new(ids.port_b, ids.port_a));
    let alerts = ctrl.alerts().count(AlertKind::LinkFabrication);
    (forged, alerts)
}

/// Probe-timeout sweep: hijack reaction time and false-start rate as the
/// timeout shrinks below / grows above the RTT quantile (§V-B1).
pub fn probe_timeout_sweep(base_seed: u64) -> String {
    use attacks::{PortProbingAttacker, ProbingConfig};
    use netsim::apps::PeriodicPinger;
    use sdn_types::SimTime;
    use tm_core::testbed::hijack_spec;

    let mut out = String::from(
        "ABLATION: probe timeout vs reaction time and false starts (RTT ~ 22 +/- 2 ms)\n\n",
    );
    out.push_str(&format!(
        "{:>14} {:>14} {:>16} {:>18}\n",
        "timeout (ms)", "trials", "false starts", "mean react (ms)"
    ));
    for timeout_ms in [20u64, 26, 35, 50, 80] {
        let trials = 30;
        let row = tm_campaign::isolate(|| {
            let mut false_starts = 0;
            let mut reactions = Vec::new();
            for i in 0..trials {
                let (mut spec, ids) = hijack_spec(DefenseStack::None, ControllerConfig::default());
                let config = ProbingConfig {
                    probe_timeout: Duration::from_millis(timeout_ms),
                    ..ProbingConfig::paper_default(ids.victim_ip, ids.client_ip)
                };
                spec.set_host_app(ids.attacker, Box::new(PortProbingAttacker::new(config)));
                spec.set_host_app(
                    ids.client,
                    Box::new(PeriodicPinger::new(
                        ids.victim_ip,
                        Duration::from_millis(250),
                    )),
                );
                let mut sim = Simulator::new(spec, base_seed + timeout_ms * 1000 + i);
                sim.host_iface_down(ids.victim_new);
                let down_at = SimTime::from_secs(3);
                sim.run_until(down_at);
                // Did the attacker already (falsely) fire before the victim
                // went down?
                let premature = sim
                    .host_app_as::<PortProbingAttacker>(ids.attacker)
                    .and_then(|a| a.timeline.believed_down_at)
                    .is_some();
                if premature {
                    false_starts += 1;
                    continue;
                }
                sim.host_iface_down(ids.victim);
                sim.run_for(Duration::from_secs(1));
                if let Some(at) = sim
                    .host_app_as::<PortProbingAttacker>(ids.attacker)
                    .and_then(|a| a.timeline.believed_down_at)
                {
                    reactions.push(at.since(down_at).as_millis_f64());
                }
            }
            let mean = reactions.iter().sum::<f64>() / reactions.len().max(1) as f64;
            (false_starts, mean)
        });
        match row {
            Ok((false_starts, mean)) => out.push_str(&format!(
                "{timeout_ms:>14} {trials:>14} {false_starts:>16} {mean:>18.1}\n"
            )),
            Err(cause) => out.push_str(&format!("{timeout_ms:>14} FAILED({cause})\n")),
        }
    }
    out.push_str(
        "\n(timeouts at or under the RTT mean false-start constantly; the quantile-derived\n 35 ms reacts within ~60-70 ms with zero false starts — the paper's §V-B1 trade)\n",
    );
    out
}
