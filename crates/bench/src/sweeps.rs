//! Parameter sweeps: scan-rate detection (§V-B2), alert flooding (§IV-B),
//! and downtime-window coverage (§IV-B2).

use sdn_types::packet::{ArpPacket, EthernetFrame, Ipv4Packet, Payload, TcpSegment, Transport};
use sdn_types::{Duration, IpAddr, MacAddr, SimTime};
use tm_core::floodsc::{self, FloodScenario};
use tm_core::DefenseStack;
use tm_ids::{IdsConfig, IdsEngine, IdsRule};

const ATTACKER: IpAddr = IpAddr::new(10, 0, 0, 66);
const VICTIM: IpAddr = IpAddr::new(10, 0, 0, 1);

/// §V-B2: at what rates do the Proofpoint-style Snort rules flag TCP SYN
/// and ARP liveness probing? (Paper: SYN scans above 2/s detected; ARP
/// probing never detected, even at the chosen 1-probe-per-50-ms rate.)
pub fn scan_detection() -> String {
    let mut out = String::from("SCAN DETECTION (Snort-style rules, 30 s of probing per rate)\n\n");
    out.push_str(&format!(
        "{:>12} {:>14} {:>14}\n",
        "rate (/s)", "TCP SYN", "ARP ping"
    ));
    for rate in [1u64, 2, 3, 5, 10, 20, 50] {
        let syn = run_rate(rate, true);
        let arp = run_rate(rate, false);
        out.push_str(&format!(
            "{:>12} {:>14} {:>14}\n",
            rate,
            if syn { "DETECTED" } else { "undetected" },
            if arp { "DETECTED" } else { "undetected" },
        ));
    }
    out.push_str("\n(paper: SYN scans above 2/s are detected; targeted ARP probing is not —\n which is why the attack settles on ARP pings every 50 ms)\n");
    out
}

fn run_rate(per_sec: u64, syn: bool) -> bool {
    let mut ids = IdsEngine::new(IdsConfig::default());
    let interval_ns = 1_000_000_000 / per_sec;
    let attacker_mac = MacAddr::from_index(66);
    let victim_mac = MacAddr::from_index(1);
    for i in 0..(30 * per_sec) {
        let at = SimTime::from_nanos(i * interval_ns);
        let frame = if syn {
            EthernetFrame::new(
                attacker_mac,
                victim_mac,
                Payload::Ipv4(Ipv4Packet::new(
                    ATTACKER,
                    VICTIM,
                    Transport::Tcp(TcpSegment::syn(40_000, 80, i as u32)),
                )),
            )
        } else {
            EthernetFrame::new(
                attacker_mac,
                MacAddr::BROADCAST,
                Payload::Arp(ArpPacket::request(attacker_mac, ATTACKER, VICTIM)),
            )
        };
        ids.observe(at, &frame);
    }
    ids.detected(IdsRule::TcpSynScan) || ids.detected(IdsRule::ArpDiscoveryFlood)
}

/// §IV-B2: how much of each migration downtime window remains usable after
/// the ~80 ms hijack completion measured in our trials? (Paper: live VM
/// migration gives seconds; maintenance gives minutes-to-hours.)
pub fn downtime_windows(hijack_completion_ms: f64) -> String {
    let mut out = String::from("DOWNTIME WINDOW COVERAGE (§IV-B2)\n\n");
    out.push_str(&format!(
        "{:<30} {:>12} {:>20}\n",
        "scenario", "window", "usable for attacker"
    ));
    for (name, window_ms) in [
        ("Xen/VMware live migration", 3_000.0),
        ("container restart", 10_000.0),
        ("server patching (minutes)", 600_000.0),
        ("maintenance (hours)", 7_200_000.0),
    ] {
        let usable = (window_ms - hijack_completion_ms) / window_ms * 100.0;
        out.push_str(&format!(
            "{:<30} {:>12} {:>19.1}%\n",
            name,
            format_window(window_ms),
            usable
        ));
    }
    out
}

fn format_window(ms: f64) -> String {
    if ms >= 3_600_000.0 {
        format!("{:.0} h", ms / 3_600_000.0)
    } else if ms >= 60_000.0 {
        format!("{:.0} min", ms / 60_000.0)
    } else {
        format!("{:.0} s", ms / 1_000.0)
    }
}

/// The alert-flood sweep: alert volume vs spoof rate under TopoGuard.
pub fn alert_flood(seed: u64) -> String {
    let mut out = String::from("ALERT FLOODING (§IV-B): operator alert volume vs spoof rate\n\n");
    out.push_str(&format!(
        "{:>14} {:>12} {:>12} {:>14}\n",
        "spoofs/s", "spoofs sent", "alerts", "alerts/s"
    ));
    for rate in [1u64, 5, 10, 20, 50] {
        // Isolated: one panicking rate point becomes a FAILED row and the
        // sweep (and the driver behind it) continues.
        match tm_campaign::isolate(|| {
            floodsc::run(&FloodScenario {
                spoof_rate_per_sec: rate,
                run_for: Duration::from_secs(20),
                ..FloodScenario::new(DefenseStack::TopoGuard, seed)
            })
        }) {
            Ok(outcome) => out.push_str(&format!(
                "{:>14} {:>12} {:>12} {:>14.1}\n",
                rate, outcome.spoofs_sent, outcome.alerts_total, outcome.alerts_per_sec
            )),
            Err(cause) => out.push_str(&format!("{rate:>14} FAILED({cause})\n")),
        }
    }
    out.push_str("\n(every spoofed frame is a migration with no Port-Down pre-condition: one alert\n each, and the operator cannot tell them from a real hijack)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_detection_threshold_is_2_per_sec() {
        assert!(!run_rate(1, true));
        assert!(
            !run_rate(2, true),
            "exactly 2/s is not *above* the threshold"
        );
        assert!(run_rate(3, true));
        assert!(run_rate(20, true));
    }

    #[test]
    fn arp_probing_undetected_at_all_rates() {
        for rate in [1, 5, 20, 50] {
            assert!(
                !run_rate(rate, false),
                "ARP at {rate}/s must stay undetected"
            );
        }
    }

    #[test]
    fn downtime_table_shows_high_coverage() {
        let t = downtime_windows(80.0);
        assert!(t.contains("97.3%"), "{t}"); // 3 s migration window
    }
}
