//! Experiment implementations regenerating every table and figure of the
//! paper, plus shared measurement utilities.
//!
//! Run them through the `experiments` binary:
//!
//! ```sh
//! cargo run --release -p bench --bin experiments -- all
//! cargo run --release -p bench --bin experiments -- table1
//! cargo run --release -p bench --bin experiments -- fig11
//! ```

pub mod ablation;
pub mod campaign;
pub mod cli;
pub mod figures;
pub mod harness;
pub mod json;
pub mod metrics;
pub mod runlog;
pub mod sweeps;
pub mod tables;
