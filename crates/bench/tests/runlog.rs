//! The binary run-log contract, pinned:
//!
//! 1. A log written by the [`bench::runlog::Writer`] sink during a live
//!    campaign reads back record-for-record, and replaying it through
//!    `aggregate_stream` reproduces the live report **byte for byte**.
//! 2. Shard logs merge into the unsharded canonical stream; duplicates
//!    and gaps are errors, not silently wrong aggregates.
//! 3. A damaged tail (partial final write) drops cleanly: the complete
//!    prefix survives, `truncated` is flagged, and `complete_cells`
//!    offers only cells whose full seed set is on disk.

use std::fs;
use std::path::{Path, PathBuf};

use bench::runlog::{self, RunLogHeader, Writer};
use tm_campaign::{
    aggregate_stream, run_campaign_with, Axis, CampaignSpec, Metrics, RecordingSink, Registry,
    Resume, Scenario, Shard,
};

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register(Scenario::new(
        "rl",
        "run-log fixture",
        vec![Axis::new("a", &["p", "q"]), Axis::new("b", &["0", "1"])],
        |point, seed| {
            if point.get("a") == Some("q") && seed % 3 == 0 {
                panic!("q fails every third seed");
            }
            let b: f64 = point.get("b").and_then(|v| v.parse().ok()).unwrap_or(0.0);
            Metrics::new()
                .with("value", (seed % 50) as f64 + b)
                .with("flag", (seed % 2) as f64)
        },
    ))
    .expect("register");
    r
}

fn spec() -> CampaignSpec {
    let mut s = CampaignSpec::new("rl", 0x5EED);
    s.seeds = 4;
    s.workers = 2;
    s.quiet_panics = true;
    s
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-runlog-{tag}"));
    fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// Runs one shard, writing its run-log and recording the live stream.
fn run_shard(dir: &Path, shard: Shard) -> (tm_campaign::CampaignReport, RecordingSink, PathBuf) {
    let r = registry();
    let mut s = spec();
    s.shard = shard;
    let scenario = r.get("rl").expect("scenario");
    let header = RunLogHeader::for_spec(scenario, &s);
    let path = dir.join(format!("rl.shard{}of{}.runlog", shard.index, shard.count));
    let mut writer = Writer::create(&path, &header, &[]).expect("create log");
    let mut recorder = RecordingSink::default();
    let mut tee = tm_campaign::TeeSink {
        first: &mut writer,
        second: &mut recorder,
    };
    let report = run_campaign_with(&r, &s, &Resume::none(), &mut tee).expect("campaign");
    (report, recorder, path)
}

#[test]
fn log_round_trips_and_replays_byte_identically() {
    let dir = tmpdir("roundtrip");
    let (live, recorder, path) = run_shard(&dir, Shard::full());

    let log = runlog::read(&path).expect("read log");
    assert!(!log.truncated);
    assert_eq!(
        log.records, recorder.runs,
        "records survive the disk round trip"
    );
    assert_eq!(log.header.grid().len(), 4);

    let replayed =
        aggregate_stream(&log.header.meta(), &log.header.grid(), log.records).expect("replay");
    assert_eq!(replayed.render(), live.render(), "replayed render");
    assert_eq!(replayed, live, "replayed report");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shard_logs_merge_into_the_unsharded_stream() {
    let dir = tmpdir("merge");
    let (whole, _, _) = run_shard(&dir, Shard::full());
    let (_, _, p0) = run_shard(&dir, Shard { index: 0, count: 2 });
    let (_, _, p1) = run_shard(&dir, Shard { index: 1, count: 2 });

    let logs = vec![
        runlog::read(&p0).expect("shard 0"),
        runlog::read(&p1).expect("shard 1"),
    ];
    let (header, records) = runlog::merge(&logs).expect("merge");
    assert!(
        header.shard.is_full(),
        "complete merge is the unsharded campaign"
    );
    let merged = aggregate_stream(&header.meta(), &header.grid(), records).expect("aggregate");
    assert_eq!(
        merged.render(),
        whole.render(),
        "merged replay vs single-shot"
    );
    assert_eq!(merged.cells, whole.cells);

    // Duplicates (same log twice) and gaps (one shard missing) are errors.
    let dup = vec![
        runlog::read(&p0).expect("shard 0"),
        runlog::read(&p0).expect("shard 0 again"),
    ];
    assert!(runlog::merge(&dup).unwrap_err().contains("duplicate"));
    // A lone shard log still merges (partial replay keeps its shard label)…
    let (lone_header, _) = runlog::merge(&logs[..1]).expect("single log");
    assert_eq!(lone_header.shard, Shard { index: 0, count: 2 });
    // …but a log with a run chopped out mid-cell reports the gap.
    let mut cut = runlog::read(&p0).expect("shard 0");
    cut.records.remove(1);
    assert!(runlog::merge(&[cut]).unwrap_err().contains("of 4 runs"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_logs_refuse_to_merge() {
    let dir = tmpdir("mismatch");
    let (_, _, path) = run_shard(&dir, Shard::full());
    let mut other = runlog::read(&path).expect("read");
    other.header.base_seed ^= 1;
    let same = runlog::read(&path).expect("read again");
    assert!(runlog::merge(&[same, other])
        .unwrap_err()
        .contains("disagree"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn damaged_tail_keeps_the_complete_prefix() {
    let dir = tmpdir("trunc");
    let (_, recorder, path) = run_shard(&dir, Shard::full());
    let full = fs::read(&path).expect("read bytes");

    // Any cut inside the record area yields a prefix of the records and
    // the truncated flag; never an error, never garbage records.
    let header_len = full.len()
        - recorder
            .runs
            .iter()
            .map(|r| runlog::encode_record(4, r).len())
            .sum::<usize>();
    for cut in [full.len() - 1, full.len() - 9, header_len + 3, header_len] {
        fs::write(&path, &full[..cut]).expect("truncate");
        let log = runlog::read(&path).expect("read truncated");
        if cut == header_len {
            assert!(!log.truncated, "a record-aligned cut is not damage");
            assert!(log.records.is_empty());
        } else {
            assert!(log.truncated, "cut={cut} must flag the damaged tail");
        }
        assert!(log.records.len() <= recorder.runs.len());
        assert_eq!(log.records.as_slice(), &recorder.runs[..log.records.len()]);
    }

    // complete_cells only offers cells whose whole seed set survived.
    fs::write(&path, &full[..full.len() - 5]).expect("truncate");
    let log = runlog::read(&path).expect("read");
    let complete = runlog::complete_cells(&log);
    assert!(
        complete.len() < 4,
        "the damaged last cell must not be offered"
    );
    for (cell, records) in &complete {
        assert_eq!(records.len(), 4);
        assert!(records
            .iter()
            .enumerate()
            .all(|(i, r)| r.seed_index == i && r.cell == *cell));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn writer_carries_kept_records_through_a_resume_rewrite() {
    let dir = tmpdir("resume");
    let (_, recorder, path) = run_shard(&dir, Shard::full());
    let log = runlog::read(&path).expect("read");

    // Pretend only cell 0 and 1 survived: rewrite keeping them, then
    // append the rest as a resumed campaign would.
    let keep: Vec<_> = recorder
        .runs
        .iter()
        .filter(|r| r.cell < 2)
        .cloned()
        .collect();
    let rest: Vec<_> = recorder
        .runs
        .iter()
        .filter(|r| r.cell >= 2)
        .cloned()
        .collect();
    let mut writer = Writer::create(&path, &log.header, &keep).expect("rewrite");
    use tm_campaign::RunSink;
    for record in &rest {
        writer.on_run(record).expect("append");
    }
    let bytes_reported = writer.bytes();
    drop(writer);

    let reread = runlog::read(&path).expect("reread");
    assert_eq!(
        reread.records, recorder.runs,
        "kept + appended = original stream"
    );
    assert!(!reread.truncated);
    assert_eq!(bytes_reported, fs::metadata(&path).expect("stat").len());
    let _ = fs::remove_dir_all(&dir);
}
