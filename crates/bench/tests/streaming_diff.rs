//! The streaming-vs-two-pass differential, pinned over **every registered
//! scenario's grid shape**.
//!
//! The streaming rebuild of the campaign runner is only allowed to exist
//! because it is byte-identical to the original collect-then-summarize
//! path. This suite drives both over:
//!
//! * a *synthetic twin* of each registered scenario — the real axes (so
//!   every grid shape in the registry is covered, from the single-cell
//!   probes to the fabric-matrix product grid) with a cheap pure-
//!   arithmetic run function plus injected failures, so the whole sweep
//!   stays test-suite fast;
//! * the real `SMOKE_SCENARIOS`, executed for real, so the adapters are
//!   in the loop for at least two scenarios.
//!
//! Each case checks: live streaming report == two-pass reference over
//! the recorded stream == stream replay, rendered bytes and structured
//! cells alike — and the sharded union of the synthetic twins matches
//! the unsharded run.

use bench::campaign;
use tm_campaign::{
    aggregate_stream, aggregate_two_pass, run_campaign_with, CampaignMeta, CampaignSpec, Metrics,
    RecordingSink, Registry, Resume, Scenario, Shard,
};

/// A registry of synthetic twins: every registered scenario's name, axes
/// and description, with the run function replaced by seed arithmetic
/// that also injects deterministic failures (so failed-cell aggregation
/// is in the differential too).
fn twin_registry() -> Registry {
    let mut twins = Registry::new();
    for scenario in campaign::registry().scenarios() {
        twins
            .register(Scenario::new(
                &scenario.name,
                &scenario.description,
                scenario.axes.clone(),
                |point, seed| {
                    // Mix the point label into the arithmetic so cells
                    // genuinely differ; fail a sliver of runs.
                    let mix = point
                        .label()
                        .bytes()
                        .fold(seed, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
                    if mix % 23 == 7 {
                        panic!("synthetic failure at {}", point.label());
                    }
                    Metrics::new()
                        .with("alpha", (mix % 1000) as f64 / 7.0)
                        .with("beta", ((mix >> 8) % 100) as f64)
                },
            ))
            .expect("register twin");
    }
    twins
}

fn spec_for(name: &str, seeds: usize, workers: usize) -> CampaignSpec {
    let mut s = CampaignSpec::new(name, 0xD1FF);
    s.seeds = seeds;
    s.workers = workers;
    s.quiet_panics = true;
    s
}

fn run_recorded(
    registry: &Registry,
    spec: &CampaignSpec,
) -> (tm_campaign::CampaignReport, RecordingSink) {
    let mut sink = RecordingSink::default();
    let report = run_campaign_with(registry, spec, &Resume::none(), &mut sink).expect("campaign");
    (report, sink)
}

#[test]
fn every_registered_grid_shape_streams_identically_to_two_pass() {
    let twins = twin_registry();
    let names: Vec<String> = campaign::registry()
        .scenarios()
        .iter()
        .map(|s| s.name.clone())
        .collect();
    assert!(names.len() >= 12, "registry shrank: {names:?}");
    for name in &names {
        let spec = spec_for(name, 3, 3);
        let (live, sink) = run_recorded(&twins, &spec);
        let scenario = twins.get(name).expect("twin");
        let grid = scenario.cells();
        let meta = CampaignMeta::for_spec(scenario, &spec);

        let two_pass = aggregate_two_pass(&meta, &grid, &sink.runs).expect("two-pass");
        assert_eq!(live.render(), two_pass.render(), "{name}: render differs");
        assert_eq!(live.cells, two_pass.cells, "{name}: cells differ");

        let replayed = aggregate_stream(&meta, &grid, sink.runs).expect("replay");
        assert_eq!(live, replayed, "{name}: stream replay differs");
    }
}

#[test]
fn twin_shard_unions_match_the_unsharded_run() {
    let twins = twin_registry();
    // The widest grid in the registry is the interesting shard case.
    let widest = campaign::registry()
        .scenarios()
        .iter()
        .max_by_key(|s| s.cells().len())
        .map(|s| s.name.clone())
        .expect("non-empty registry");
    let whole = run_recorded(&twins, &spec_for(&widest, 2, 2)).0;
    for count in [2u32, 5] {
        let mut cells = Vec::new();
        for index in 0..count {
            let mut spec = spec_for(&widest, 2, 2);
            spec.shard = Shard { index, count };
            cells.extend(run_recorded(&twins, &spec).0.cells);
        }
        cells.sort_by_key(|c| c.index);
        assert_eq!(cells, whole.cells, "{widest}: {count}-way union differs");
    }
}

#[test]
fn real_smoke_scenarios_stream_identically_to_two_pass() {
    let registry = campaign::registry();
    for name in campaign::SMOKE_SCENARIOS {
        let spec = spec_for(name, 3, 2);
        let (live, sink) = run_recorded(&registry, &spec);
        let scenario = registry.get(name).expect("scenario");
        let meta = CampaignMeta::for_spec(scenario, &spec);
        let two_pass = aggregate_two_pass(&meta, &scenario.cells(), &sink.runs).expect("two-pass");
        assert_eq!(live.render(), two_pass.render(), "{name}: render differs");
        assert_eq!(live, two_pass, "{name}: report differs");
    }
}
