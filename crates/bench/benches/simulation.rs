//! End-to-end simulation throughput: how much wall-clock a simulated
//! second costs with the full controller + defense stack running, and the
//! cost of a complete hijack scenario.

use bench::harness::Bench;

use controller::ControllerConfig;
use netsim::apps::PeriodicPinger;
use netsim::{LinkProfile, NetworkSpec, Simulator};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo};
use tm_core::hijack::{self, HijackScenario};
use tm_core::DefenseStack;

fn busy_network(stack: DefenseStack) -> Simulator {
    let mut spec = NetworkSpec::new();
    let link = LinkProfile::fixed(Duration::from_millis(2));
    for s in 1..=4u64 {
        spec.add_switch(DatapathId::new(s));
    }
    for s in 1..4u64 {
        spec.link_switches(
            DatapathId::new(s),
            PortNo::new(2),
            DatapathId::new(s + 1),
            PortNo::new(3),
            link,
        );
    }
    for h in 1..=8u32 {
        let host = HostId::new(h);
        spec.add_host(host, MacAddr::from_index(h), IpAddr::new(10, 0, 0, h as u8));
        spec.attach_host(
            host,
            DatapathId::new(u64::from((h - 1) % 4) + 1),
            PortNo::new(10 + (h as u16 - 1) / 4),
            link,
        );
        let peer = IpAddr::new(10, 0, 0, (h % 8 + 1) as u8);
        spec.set_host_app(
            host,
            Box::new(PeriodicPinger::new(peer, Duration::from_millis(50))),
        );
    }
    spec.set_controller(Box::new(
        stack.build_controller(ControllerConfig::default()),
    ));
    Simulator::new(spec, 7)
}

fn main() {
    let group = Bench::new("simulated_second_8_hosts_4_switches").samples(10);
    for stack in [DefenseStack::None, DefenseStack::TopoGuardPlus] {
        group.bench_with_setup(
            &format!("{stack}"),
            || busy_network(stack),
            |mut sim| {
                sim.run_for(Duration::from_secs(1));
                sim.now()
            },
        );
    }

    let group = Bench::new("scenario").samples(10);
    let mut seed = 0;
    group.bench("hijack_end_to_end", || {
        seed += 1;
        hijack::run(&HijackScenario {
            victim_rejoins: false,
            tail: Duration::from_millis(100),
            ..HijackScenario::new(DefenseStack::TopoGuardSphinx, seed)
        })
        .hijack_succeeded()
    });
}
