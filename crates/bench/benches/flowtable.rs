//! Flow-table benchmarks: match/insert/expire at realistic table sizes.

use bench::harness::{black_box, Bench};

use openflow::{Action, FlowEntry, FlowMatch, FlowTable, MatchOutcome};
use sdn_types::packet::{EthernetFrame, Payload};
use sdn_types::{Duration, MacAddr, PortNo, SimTime};

fn table_with(n: u32) -> FlowTable {
    let mut table = FlowTable::new();
    for i in 0..n {
        let entry = FlowEntry::new(
            FlowMatch::new()
                .with_eth_src(MacAddr::from_index(i))
                .with_eth_dst(MacAddr::from_index(i + 1)),
            vec![Action::Output(PortNo::new((i % 8) as u16 + 1))],
        )
        .with_idle_timeout(Duration::from_secs(5));
        table.insert(entry, SimTime::ZERO);
    }
    table
}

fn frame(src: u32, dst: u32) -> EthernetFrame {
    EthernetFrame::new(
        MacAddr::from_index(src),
        MacAddr::from_index(dst),
        Payload::Opaque {
            ethertype: 0x1234,
            data: vec![0; 64],
        },
    )
}

fn main() {
    let group = Bench::new("flowtable_match");
    for n in [10u32, 100, 1000] {
        // Hit in the middle of the table.
        let hit = frame(n / 2, n / 2 + 1);
        let miss = frame(n + 10, n + 11);
        let mut table = table_with(n);
        group.bench(&format!("hit/{n}"), || {
            matches!(
                table.process(black_box(&hit), PortNo::new(1), SimTime::ZERO),
                MatchOutcome::Forward { .. }
            )
        });
        let mut table = table_with(n);
        group.bench(&format!("miss/{n}"), || {
            matches!(
                table.process(black_box(&miss), PortNo::new(1), SimTime::ZERO),
                MatchOutcome::Miss
            )
        });
    }

    let group = Bench::new("flowtable");
    group.bench("insert_1000", || black_box(table_with(1000)).len());
    let table = table_with(1000);
    group.bench_with_setup(
        "expire_scan_1000",
        || table.clone(),
        |mut t| t.expire(SimTime::from_secs(1)).len(),
    );
}
