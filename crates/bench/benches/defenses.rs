//! Defense-datapath microbenchmarks: the per-event costs of the TopoGuard
//! profiler, the LLI's IQR store, and SPHINX's flow-graph updates.

use bench::harness::{black_box, Bench};

use sdn_types::{DatapathId, PortNo, SimTime, SwitchPort};
use tm_stats::IqrOutlierDetector;
use topoguard::profiler::PortProfiler;

fn main() {
    let group = Bench::new("topoguard_profiler");
    {
        let mut profiler = PortProfiler::new();
        // Pre-populate 256 ports.
        for p in 0..256u16 {
            profiler.saw_host_traffic(
                SwitchPort::new(DatapathId::new(u64::from(p) % 8), PortNo::new(p)),
                SimTime::ZERO,
            );
        }
        let port = SwitchPort::new(DatapathId::new(3), PortNo::new(77));
        group.bench("traffic_update", || {
            profiler.saw_host_traffic(black_box(port), SimTime::from_millis(1))
        });
    }
    {
        let mut profiler = PortProfiler::new();
        let port = SwitchPort::new(DatapathId::new(1), PortNo::new(1));
        group.bench("amnesia_reset_cycle", || {
            profiler.saw_host_traffic(port, SimTime::ZERO);
            profiler.port_down(port, SimTime::from_millis(1));
            profiler.saw_lldp(port, SimTime::from_millis(2));
        });
    }

    let group = Bench::new("lli_iqr");
    for window in [20usize, 100, 500] {
        let mut det = IqrOutlierDetector::new(window, 10, 3.0);
        for i in 0..window {
            det.inspect(5.0 + (i % 7) as f64 * 0.05);
        }
        group.bench(&format!("inspect_window_{window}"), || {
            det.inspect(black_box(5.2))
        });
    }
}
