//! Microbenchmarks for packet encode/parse — the per-frame cost floor of
//! the whole simulation.

use bench::harness::{black_box, Bench};

use sdn_types::packet::{
    ArpPacket, EthernetFrame, IcmpPacket, Ipv4Packet, LldpPacket, Payload, TcpSegment, Transport,
};
use sdn_types::{DatapathId, IpAddr, MacAddr, PortNo};

fn frames() -> Vec<(&'static str, EthernetFrame)> {
    let src = MacAddr::from_index(1);
    let dst = MacAddr::from_index(2);
    vec![
        (
            "arp",
            EthernetFrame::new(
                src,
                MacAddr::BROADCAST,
                Payload::Arp(ArpPacket::request(
                    src,
                    IpAddr::new(10, 0, 0, 1),
                    IpAddr::new(10, 0, 0, 2),
                )),
            ),
        ),
        (
            "icmp",
            EthernetFrame::new(
                src,
                dst,
                Payload::Ipv4(Ipv4Packet::new(
                    IpAddr::new(10, 0, 0, 1),
                    IpAddr::new(10, 0, 0, 2),
                    Transport::Icmp(IcmpPacket::echo_request(1, 1, vec![0xAB; 32])),
                )),
            ),
        ),
        (
            "tcp_syn",
            EthernetFrame::new(
                src,
                dst,
                Payload::Ipv4(Ipv4Packet::new(
                    IpAddr::new(10, 0, 0, 1),
                    IpAddr::new(10, 0, 0, 2),
                    Transport::Tcp(TcpSegment::syn(40_000, 80, 7)),
                )),
            ),
        ),
        (
            "lldp",
            EthernetFrame::new(
                src,
                MacAddr::LLDP_MULTICAST,
                Payload::Lldp(LldpPacket::new(DatapathId::new(1), PortNo::new(1))),
            ),
        ),
    ]
}

fn main() {
    let encode = Bench::new("encode");
    for (name, frame) in frames() {
        encode.bench(name, || black_box(&frame).encode());
    }

    let parse = Bench::new("parse");
    for (name, frame) in frames() {
        let wire = frame.encode();
        parse.bench(name, || {
            EthernetFrame::parse(black_box(&wire)).expect("parses")
        });
    }
}
