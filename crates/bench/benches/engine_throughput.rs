//! Engine event throughput at datacenter scale: wall-clock events/sec for
//! one simulated second of pure control-plane load (handshakes, LLDP
//! discovery, echo probes) on generated fabrics of 4, 100, and 1000
//! switches, under both event-queue backends.
//!
//! Two record families go to `BENCH_JSON`:
//!
//! * `engine_throughput/...` — the harness's standard wall-clock summary
//!   for one simulated second per `(topology, backend)`;
//! * `engine_throughput_eps/...` — the derived events-per-wall-second
//!   figure (`events_processed` is deterministic per topology, so the
//!   division is exact given the measured wall time). Each record also
//!   carries `sched_entry_bytes`, the per-entry size the queue backends
//!   sift — the boxed-payload scheduler pins it at ≤32 bytes.
//!
//! The wheel-vs-heap comparison at every size is the acceptance gate for
//! the scheduler swap; the differential suite proves equivalence, this
//! bench proves the throughput claim. Because the two backends differ by
//! tens of nanoseconds per event while a shared host's scheduler noise
//! swings whole runs by >10%, the comparison interleaves wheel and heap
//! rounds and scores each backend by its best round — back-to-back
//! rounds see the same noise regime, and the minimum is the least
//! contaminated estimate of intrinsic cost.

use bench::harness::Bench;
use bench::json::JsonValue;

use controller::ControllerConfig;
use netsim::{LinkProfile, SchedBackend, Simulator};
use sdn_types::Duration;
use tm_core::DefenseStack;
use tm_topo::TopoKind;

const SEED: u64 = 0xD5_2018;

/// 4, 100, and 1000 switches. The 100- and 1000-switch fabrics are
/// core–edge (fat-tree k=16 tops out at 320 switches); the 1000-switch
/// one carries no hosts — at that size the switch control plane alone is
/// the load under test.
fn sizes() -> Vec<TopoKind> {
    vec![
        TopoKind::Linear {
            switches: 4,
            hosts_per_switch: 1,
        },
        TopoKind::CoreEdge {
            core: 4,
            edge: 96,
            hosts_per_edge: 1,
        },
        TopoKind::CoreEdge {
            core: 8,
            edge: 992,
            hosts_per_edge: 0,
        },
    ]
}

fn build_sim(kind: TopoKind, backend: SchedBackend) -> Simulator {
    let topo = kind.generate(SEED, 0);
    let mut spec = topo.build_network(
        LinkProfile::fixed(Duration::from_micros(50)),
        LinkProfile::fixed(Duration::from_millis(1)),
    );
    spec.set_controller(Box::new(
        DefenseStack::None.build_controller(ControllerConfig::default()),
    ));
    spec.set_telemetry(tm_telemetry::Telemetry::new());
    spec.set_sched_backend(backend);
    Simulator::new(spec, SEED)
}

/// Events processed in one simulated second — deterministic per
/// `(topology, seed)`, and identical across backends by the differential
/// suite's guarantee.
fn events_per_sim_second(kind: TopoKind) -> u64 {
    let mut sim = build_sim(kind, SchedBackend::Wheel);
    sim.run_for(Duration::from_secs(1));
    sim.metrics_snapshot()
        .counter("netsim.engine.events_processed")
        .unwrap_or(0)
}

/// Best-of-N wall time for one simulated second, with wheel and heap
/// rounds interleaved so both backends sample the same noise regime.
///
/// Small fabrics finish a simulated second in microseconds — far too
/// short a timed region for a shared host's timer and frequency jitter —
/// so each round runs enough independent sims back-to-back to stretch
/// the region to ~2 ms, and reports the per-sim cost.
fn interleaved_best_ns(kind: TopoKind, rounds: u32) -> (u64, u64) {
    let reps = {
        let mut sim = build_sim(kind, SchedBackend::Heap);
        let start = std::time::Instant::now();
        sim.run_for(Duration::from_secs(1));
        std::hint::black_box(sim.now());
        let single_ns = start.elapsed().as_nanos().max(1) as u64;
        (2_000_000 / single_ns).clamp(1, 256) as usize
    };
    let mut best = [u64::MAX; 2];
    for round in 0..rounds {
        // Build every sim first so the two timed regions run
        // back-to-back, seeing as near-identical a noise regime as a
        // shared host allows; alternate which backend runs first so the
        // best-of samples both positions (the first timed region sees
        // whatever the later sims' construction evicted).
        let order = if round % 2 == 0 {
            [SchedBackend::Wheel, SchedBackend::Heap]
        } else {
            [SchedBackend::Heap, SchedBackend::Wheel]
        };
        let mut batches = order.map(|b| (0..reps).map(|_| build_sim(kind, b)).collect::<Vec<_>>());
        for (backend, batch) in order.into_iter().zip(batches.iter_mut()) {
            let start = std::time::Instant::now();
            for sim in batch.iter_mut() {
                sim.run_for(Duration::from_secs(1));
                std::hint::black_box(sim.now());
            }
            let i = usize::from(backend == SchedBackend::Heap);
            best[i] = best[i].min(start.elapsed().as_nanos() as u64 / reps as u64);
        }
    }
    (best[0], best[1])
}

fn main() {
    let group = Bench::new("engine_throughput").samples(5);
    for kind in sizes() {
        let label_base = kind.label();
        let events = events_per_sim_second(kind);
        // Standard harness records: absolute wall cost per simulated
        // second, tracked run-over-run like every other suite.
        for backend in [SchedBackend::Wheel, SchedBackend::Heap] {
            let backend_tag = match backend {
                SchedBackend::Wheel => "wheel",
                SchedBackend::Heap => "heap",
            };
            let label = format!("{label_base}/{backend_tag}");
            group.bench_with_setup(
                &label,
                || build_sim(kind, backend),
                |mut sim| {
                    sim.run_for(Duration::from_secs(1));
                    sim.now()
                },
            );
        }
        // Interleaved best-of-N: the backend comparison itself.
        let (wheel_ns, heap_ns) = interleaved_best_ns(kind, 16);
        let speedup = heap_ns as f64 / wheel_ns.max(1) as f64;
        for (backend_tag, best_ns) in [("wheel", wheel_ns), ("heap", heap_ns)] {
            let label = format!("{label_base}/{backend_tag}");
            let eps = events as f64 * 1e9 / best_ns.max(1) as f64;
            println!(
                "engine_throughput_eps/{label}: {eps:.0} events/sec \
                 ({events} events per simulated second, best {best_ns} ns)"
            );
            let record = JsonValue::object(vec![
                ("suite", "engine_throughput_eps".into()),
                ("bench", label.as_str().into()),
                ("switches", kind.switch_count().into()),
                ("events_per_sim_sec", events.into()),
                ("events_per_wall_sec", eps.into()),
                ("best_ns", best_ns.into()),
                // Bytes the heap/wheel sift actually moves per entry; the
                // boxed-payload scheduler pins this at ≤32 so a payload
                // regression shows up in the perf trajectory, not just in
                // the unit test.
                ("sched_entry_bytes", netsim::sched_entry_bytes().into()),
            ]);
            println!("BENCH_JSON {}", record.to_compact());
        }
        println!("engine_throughput_eps/{label_base}: wheel/heap speedup {speedup:.3}x");
    }
}
