//! Table II, rigorously: the LLDP construction/processing cost with and
//! without the TOPOGUARD+ extensions (HMAC signature + encrypted timestamp
//! TLV + IQR inspection).

use bench::harness::{black_box, Bench};

use sdn_types::crypto::Key;
use sdn_types::packet::{EthernetFrame, LldpPacket, Payload};
use sdn_types::{DatapathId, MacAddr, PortNo, SimTime};
use tm_stats::IqrOutlierDetector;

const KEY: Key = Key::new(0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321);
const DPID: DatapathId = DatapathId::new(7);
const PORT: PortNo = PortNo::new(3);

fn construct_plain() -> sdn_types::buf::Bytes {
    let lldp = LldpPacket::new(DPID, PORT);
    EthernetFrame::new(
        MacAddr::from_index(1),
        MacAddr::LLDP_MULTICAST,
        Payload::Lldp(lldp),
    )
    .encode()
}

fn construct_topoguard_plus() -> sdn_types::buf::Bytes {
    let lldp = LldpPacket::new(DPID, PORT)
        .with_timestamp(KEY, SimTime::from_millis(123))
        .signed(KEY);
    EthernetFrame::new(
        MacAddr::from_index(1),
        MacAddr::LLDP_MULTICAST,
        Payload::Lldp(lldp),
    )
    .encode()
}

fn main() {
    let construction = Bench::new("lldp_construction");
    construction.bench("baseline", construct_plain);
    construction.bench("topoguard_plus", construct_topoguard_plus);

    let wire_plain = construct_plain();
    let wire_tgp = construct_topoguard_plus();

    let processing = Bench::new("lldp_processing");
    processing.bench("baseline", || {
        let frame = EthernetFrame::parse(black_box(&wire_plain)).expect("parses");
        frame.lldp().map(|l| (l.dpid, l.port))
    });

    let mut detector = IqrOutlierDetector::paper_default();
    for i in 0..50 {
        detector.inspect(5.0 + (i % 5) as f64 * 0.1);
    }
    processing.bench_with_setup(
        "topoguard_plus",
        || detector.clone(),
        |mut det| {
            let frame = EthernetFrame::parse(black_box(&wire_tgp)).expect("parses");
            let lldp = frame.lldp().expect("lldp");
            let ok = lldp.verify(KEY);
            let ts = lldp.open_timestamp(KEY);
            let verdict = det.inspect(5.2);
            (ok, ts, verdict)
        },
    );
}
