//! A SPHINX surrogate (Dhawan et al., NDSS 2015; §III-C of the DSN paper).
//!
//! The paper's authors could not obtain SPHINX and built a surrogate
//! implementing its invariants; we do the same. The module builds *flow
//! graphs* — the switches each `(src MAC, dst MAC)` flow traverses,
//! annotated with per-switch byte counters from flow statistics — and
//! checks:
//!
//! * **Counter conservation** — along a flow's path, per-switch byte counts
//!   must agree within a tolerance (a relay that drops or injects traffic
//!   diverges). `FlowMod` messages from the controller are trusted as the
//!   declaration of intent (the path).
//! * **Identifier uniqueness** — a MAC oscillating between network
//!   locations (more than one move inside a short window) indicates two
//!   live bearers of the same identity.
//! * **Link stability** — SPHINX "implicitly trusts new links, and only
//!   raises an alert when existing links are changed": a switch port that
//!   was an endpoint of one link becoming an endpoint of a *different*
//!   link raises an alert.
//!
//! Faithfully to the paper, SPHINX raises alerts but never blocks updates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::BTreeMap;

use controller::DirectedLink;
use controller::{
    Alert, AlertKind, Command, DefenseModule, HostMove, LinkLatencySample, ModuleCtx,
};
use openflow::{FlowStatsEntry, OfMessage};
use sdn_types::{DatapathId, Duration, MacAddr, SimTime, SwitchPort};

/// SPHINX configuration.
#[derive(Clone, Copy, Debug)]
pub struct SphinxConfig {
    /// Relative divergence between per-switch byte counters on the same
    /// flow before alerting (e.g. `0.5` = 50 %).
    pub counter_tolerance: f64,
    /// Minimum bytes a flow must carry before counter checks apply.
    pub counter_min_bytes: u64,
    /// Two location changes for the same MAC within this window count as
    /// oscillation (identifier conflict).
    pub oscillation_window: Duration,
    /// Counter-conservation compares per-switch counters only when all of
    /// them were refreshed within this window of each other. Comparing a
    /// fresh counter against one from the previous polling round would
    /// false-positive on every growing flow.
    pub counter_staleness: Duration,
}

impl Default for SphinxConfig {
    fn default() -> Self {
        SphinxConfig {
            counter_tolerance: 0.5,
            counter_min_bytes: 500,
            oscillation_window: Duration::from_secs(10),
            counter_staleness: Duration::from_millis(500),
        }
    }
}

/// A flow key: source and destination MAC.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowKey {
    /// Source MAC.
    pub src: MacAddr,
    /// Destination MAC.
    pub dst: MacAddr,
}

/// The flow graph for one flow: expected waypoints (from trusted FlowMods)
/// and observed per-switch counters (from flow statistics).
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    /// Switches the controller installed rules on for this flow.
    pub waypoints: Vec<DatapathId>,
    /// Latest per-switch byte counts, with the time each was refreshed.
    pub byte_counts: BTreeMap<DatapathId, (u64, SimTime)>,
    /// Latest per-switch packet counts.
    pub packet_counts: BTreeMap<DatapathId, u64>,
}

/// The SPHINX surrogate module.
pub struct Sphinx {
    config: SphinxConfig,
    /// Flow graphs by flow key.
    pub flows: BTreeMap<FlowKey, FlowGraph>,
    /// Per-MAC recent moves (for oscillation detection).
    recent_moves: BTreeMap<MacAddr, Vec<SimTime>>,
    /// Which link each switch port was last an endpoint of.
    port_links: BTreeMap<SwitchPort, DirectedLink>,
    /// Alerts raised (diagnostics).
    pub detections: u64,
}

impl Sphinx {
    /// Creates the module with default configuration.
    pub fn new(config: SphinxConfig) -> Self {
        Sphinx {
            config,
            flows: BTreeMap::new(),
            recent_moves: BTreeMap::new(),
            port_links: BTreeMap::new(),
            detections: 0,
        }
    }

    fn alert(&mut self, cx: &mut ModuleCtx<'_>, kind: AlertKind, detail: String) {
        self.detections += 1;
        cx.telemetry.counter_inc("sphinx.detections");
        cx.alerts.raise(Alert {
            at: cx.now,
            source: "sphinx",
            kind,
            detail,
        });
    }

    /// Checks counter conservation for one flow; returns the divergence
    /// ratio if it violates the tolerance. Only counters refreshed within
    /// the same polling epoch are compared.
    fn counter_violation(config: &SphinxConfig, graph: &FlowGraph) -> Option<f64> {
        let newest = graph.byte_counts.values().map(|(_, at)| *at).max()?;
        let fresh: Vec<u64> = graph
            .byte_counts
            .values()
            .filter(|(_, at)| newest.since(*at) <= config.counter_staleness)
            .map(|(v, _)| *v)
            .collect();
        if fresh.len() < 2 {
            return None;
        }
        let max = *fresh.iter().max()?;
        let min = *fresh.iter().min()?;
        if max < config.counter_min_bytes {
            return None;
        }
        let divergence = (max - min) as f64 / max as f64;
        (divergence > config.counter_tolerance).then_some(divergence)
    }
}

impl DefenseModule for Sphinx {
    fn name(&self) -> &'static str {
        "sphinx"
    }

    fn on_flow_mod(&mut self, _cx: &mut ModuleCtx<'_>, dpid: DatapathId, msg: &OfMessage) {
        // FlowMods are trusted: they declare the intended flow graph.
        if let OfMessage::FlowMod { flow_match, .. } = msg {
            if let (Some(src), Some(dst)) = (flow_match.eth_src, flow_match.eth_dst) {
                let graph = self.flows.entry(FlowKey { src, dst }).or_default();
                if !graph.waypoints.contains(&dpid) {
                    graph.waypoints.push(dpid);
                }
            }
        }
    }

    fn on_flow_stats(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        dpid: DatapathId,
        flows: &[FlowStatsEntry],
    ) {
        cx.telemetry.counter_inc("sphinx.flow_stats_replies");
        let mut violations = Vec::new();
        for entry in flows {
            let (Some(src), Some(dst)) = (entry.flow_match.eth_src, entry.flow_match.eth_dst)
            else {
                continue;
            };
            let key = FlowKey { src, dst };
            let now = cx.now;
            let graph = self.flows.entry(key).or_default();
            graph.byte_counts.insert(dpid, (entry.byte_count, now));
            graph.packet_counts.insert(dpid, entry.packet_count);
            if let Some(divergence) = Self::counter_violation(&self.config, graph) {
                violations.push((key, divergence));
            }
        }
        for (key, divergence) in violations {
            self.alert(
                cx,
                AlertKind::FlowInconsistency,
                format!(
                    "flow {} -> {}: per-switch byte counters diverge by {:.0}%",
                    key.src,
                    key.dst,
                    divergence * 100.0
                ),
            );
        }
    }

    fn on_host_move(&mut self, cx: &mut ModuleCtx<'_>, mv: &HostMove) -> Command {
        let moves = self.recent_moves.entry(mv.mac).or_default();
        moves.push(cx.now);
        let cutoff = SimTime::from_nanos(
            cx.now
                .as_nanos()
                .saturating_sub(self.config.oscillation_window.as_nanos()),
        );
        moves.retain(|at| *at >= cutoff);
        if moves.len() >= 2 {
            let detail = format!(
                "identifier {} oscillating between locations ({} moves in {}s window): {} <-> {}",
                mv.mac,
                moves.len(),
                self.config.oscillation_window.as_millis() / 1000,
                mv.from,
                mv.to
            );
            self.alert(cx, AlertKind::IdentifierConflict, detail);
        }
        // SPHINX never blocks.
        Command::Continue
    }

    fn on_link_update(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        link: DirectedLink,
        is_new: bool,
        _sample: Option<LinkLatencySample>,
    ) -> Command {
        if is_new {
            // "SPHINX implicitly trusts new links" — but an endpoint moving
            // from one link to a *different* link is a change.
            for port in [link.src, link.dst] {
                if let Some(previous) = self.port_links.get(&port) {
                    if *previous != link && previous.reversed() != link {
                        let detail = format!(
                            "port {} changed links: {} -> {} became {} -> {}",
                            port, previous.src, previous.dst, link.src, link.dst
                        );
                        self.alert(cx, AlertKind::LinkChanged, detail);
                    }
                }
            }
            self.port_links.insert(link.src, link);
            self.port_links.insert(link.dst, link);
        }
        Command::Continue
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_violation_thresholds() {
        let sphinx = Sphinx::new(SphinxConfig::default());
        let mut graph = FlowGraph::default();
        let t = SimTime::from_secs(1);
        graph.byte_counts.insert(DatapathId::new(1), (1000, t));
        graph.byte_counts.insert(DatapathId::new(2), (900, t));
        assert!(
            Sphinx::counter_violation(&sphinx.config, &graph).is_none(),
            "10% ok"
        );
        graph.byte_counts.insert(DatapathId::new(2), (100, t));
        assert!(
            Sphinx::counter_violation(&sphinx.config, &graph).is_some(),
            "90% violates"
        );
    }

    #[test]
    fn counter_check_needs_volume_and_two_switches() {
        let sphinx = Sphinx::new(SphinxConfig::default());
        let mut graph = FlowGraph::default();
        let t = SimTime::from_secs(1);
        graph.byte_counts.insert(DatapathId::new(1), (100, t));
        assert!(
            Sphinx::counter_violation(&sphinx.config, &graph).is_none(),
            "one switch"
        );
        graph.byte_counts.insert(DatapathId::new(2), (1, t));
        assert!(
            Sphinx::counter_violation(&sphinx.config, &graph).is_none(),
            "below min volume"
        );
    }
}
