//! Direct unit tests of the SPHINX surrogate's invariants.

use controller::test_support::ModuleHarness;
use controller::{AlertKind, Command, DefenseModule, DirectedLink, HostMove};
use openflow::{Action, FlowMatch, FlowModCommand, FlowStatsEntry, OfMessage};
use sdn_types::{DatapathId, MacAddr, PortNo, SimTime, SwitchPort};
use sphinx::{Sphinx, SphinxConfig};

fn sp(d: u64, p: u16) -> SwitchPort {
    SwitchPort::new(DatapathId::new(d), PortNo::new(p))
}

fn flow_mod(src: MacAddr, dst: MacAddr) -> OfMessage {
    OfMessage::FlowMod {
        command: FlowModCommand::Add,
        flow_match: FlowMatch::new().with_eth_src(src).with_eth_dst(dst),
        priority: 100,
        idle_timeout_secs: 5,
        hard_timeout_secs: 0,
        actions: vec![Action::Output(PortNo::new(1))],
        cookie: 0,
    }
}

fn stats(src: MacAddr, dst: MacAddr, bytes: u64) -> Vec<FlowStatsEntry> {
    vec![FlowStatsEntry {
        flow_match: FlowMatch::new().with_eth_src(src).with_eth_dst(dst),
        priority: 100,
        packet_count: bytes / 100,
        byte_count: bytes,
    }]
}

#[test]
fn flow_mods_build_the_trusted_flow_graph() {
    let mut h = ModuleHarness::new();
    let mut sphinx = Sphinx::new(SphinxConfig::default());
    let (a, b) = (MacAddr::from_index(1), MacAddr::from_index(2));
    for dpid in [1u64, 2, 3] {
        sphinx.on_flow_mod(
            &mut h.ctx(SimTime::ZERO),
            DatapathId::new(dpid),
            &flow_mod(a, b),
        );
    }
    let key = sphinx::FlowKey { src: a, dst: b };
    assert_eq!(sphinx.flows[&key].waypoints.len(), 3);
}

#[test]
fn consistent_counters_stay_silent_divergent_counters_alert() {
    let mut h = ModuleHarness::new();
    let mut sphinx = Sphinx::new(SphinxConfig::default());
    let (a, b) = (MacAddr::from_index(1), MacAddr::from_index(2));

    // Both switches report roughly equal byte counts: fine.
    sphinx.on_flow_stats(
        &mut h.ctx(SimTime::from_secs(1)),
        DatapathId::new(1),
        &stats(a, b, 10_000),
    );
    sphinx.on_flow_stats(
        &mut h.ctx(SimTime::from_secs(1)),
        DatapathId::new(2),
        &stats(a, b, 9_500),
    );
    assert!(h.alerts.is_empty());

    // Switch 2 stops seeing traffic (a drop/black-hole): alerts on every
    // polling round that still shows the divergence.
    sphinx.on_flow_stats(
        &mut h.ctx(SimTime::from_secs(3)),
        DatapathId::new(1),
        &stats(a, b, 50_000),
    );
    sphinx.on_flow_stats(
        &mut h.ctx(SimTime::from_secs(3)),
        DatapathId::new(2),
        &stats(a, b, 9_600),
    );
    assert!(h.alerts.count(AlertKind::FlowInconsistency) >= 1);
}

#[test]
fn low_volume_flows_are_not_judged() {
    let mut h = ModuleHarness::new();
    let mut sphinx = Sphinx::new(SphinxConfig::default());
    let (a, b) = (MacAddr::from_index(1), MacAddr::from_index(2));
    sphinx.on_flow_stats(
        &mut h.ctx(SimTime::from_secs(1)),
        DatapathId::new(1),
        &stats(a, b, 400),
    );
    sphinx.on_flow_stats(
        &mut h.ctx(SimTime::from_secs(1)),
        DatapathId::new(2),
        &stats(a, b, 10),
    );
    assert!(h.alerts.is_empty(), "below counter_min_bytes");
}

#[test]
fn single_move_is_fine_oscillation_alerts_but_never_blocks() {
    let mut h = ModuleHarness::new();
    let mut sphinx = Sphinx::new(SphinxConfig::default());
    let mac = MacAddr::from_index(3);
    let mv = |from, to, at| HostMove {
        mac,
        ip: None,
        from,
        to,
        at,
    };

    // One legitimate migration: no alert, and never blocked.
    let v = sphinx.on_host_move(
        &mut h.ctx(SimTime::from_secs(1)),
        &mv(sp(1, 1), sp(2, 1), SimTime::from_secs(1)),
    );
    assert_eq!(v, Command::Continue);
    assert!(h.alerts.is_empty());

    // A second move within the window: oscillation.
    let v = sphinx.on_host_move(
        &mut h.ctx(SimTime::from_secs(3)),
        &mv(sp(2, 1), sp(1, 1), SimTime::from_secs(3)),
    );
    assert_eq!(v, Command::Continue, "SPHINX never blocks");
    assert_eq!(h.alerts.count(AlertKind::IdentifierConflict), 1);
}

#[test]
fn slow_moves_outside_window_do_not_oscillate() {
    let mut h = ModuleHarness::new();
    let mut sphinx = Sphinx::new(SphinxConfig::default());
    let mac = MacAddr::from_index(3);
    for (i, (from, to)) in [
        (sp(1, 1), sp(2, 1)),
        (sp(2, 1), sp(1, 1)),
        (sp(1, 1), sp(2, 1)),
    ]
    .into_iter()
    .enumerate()
    {
        let at = SimTime::from_secs(i as u64 * 60);
        sphinx.on_host_move(
            &mut h.ctx(at),
            &HostMove {
                mac,
                ip: None,
                from,
                to,
                at,
            },
        );
    }
    assert!(h.alerts.is_empty(), "minutes apart is normal churn");
}

#[test]
fn new_links_trusted_changed_links_alert() {
    let mut h = ModuleHarness::new();
    let mut sphinx = Sphinx::new(SphinxConfig::default());
    let original = DirectedLink::new(sp(1, 1), sp(2, 1));
    let v = sphinx.on_link_update(&mut h.ctx(SimTime::from_secs(1)), original, true, None);
    assert_eq!(v, Command::Continue);
    assert!(h.alerts.is_empty(), "new links are implicitly trusted");

    // Refreshes of the same link: fine.
    sphinx.on_link_update(&mut h.ctx(SimTime::from_secs(2)), original, false, None);
    assert!(h.alerts.is_empty());

    // The same port now claims a *different* peer: changed link.
    let hijacked = DirectedLink::new(sp(1, 1), sp(3, 7));
    sphinx.on_link_update(&mut h.ctx(SimTime::from_secs(3)), hijacked, true, None);
    assert_eq!(h.alerts.count(AlertKind::LinkChanged), 1);
}

#[test]
fn reverse_direction_is_not_a_change() {
    let mut h = ModuleHarness::new();
    let mut sphinx = Sphinx::new(SphinxConfig::default());
    let fwd = DirectedLink::new(sp(1, 1), sp(2, 1));
    sphinx.on_link_update(&mut h.ctx(SimTime::from_secs(1)), fwd, true, None);
    sphinx.on_link_update(
        &mut h.ctx(SimTime::from_secs(1)),
        fwd.reversed(),
        true,
        None,
    );
    assert!(h.alerts.is_empty(), "a link's two directions are one link");
}
