//! Lazily-expanded shrink trees (Hedgehog-style).
//!
//! A [`Tree`] is a generated value plus a *lazy* list of smaller candidate
//! trees. Laziness matters: eager shrink trees are exponentially large,
//! while a lazy tree only materializes the children actually visited by
//! the greedy shrink walk. Because shrinking lives in the tree (not in the
//! strategy), it composes automatically through `prop_map`, tuples,
//! vectors, and `one_of` — mapped values shrink by shrinking their
//! pre-image.

use std::rc::Rc;

/// A generated value together with its lazily-computed shrink candidates,
/// ordered most-aggressive first.
pub struct Tree<T> {
    value: T,
    children: Rc<dyn Fn() -> Vec<Tree<T>>>,
}

impl<T> Clone for Tree<T>
where
    T: Clone,
{
    fn clone(&self) -> Self {
        Tree {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: Clone + 'static> Tree<T> {
    /// A tree with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Tree {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A tree whose candidates are produced on demand by `children`.
    pub fn with_children(value: T, children: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Tree {
            value,
            children: Rc::new(children),
        }
    }

    /// The generated value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Materializes the immediate shrink candidates.
    pub fn children(&self) -> Vec<Tree<T>> {
        (self.children)()
    }

    /// Maps the whole tree through `f`, preserving the shrink structure.
    pub fn map<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Tree<U> {
        let value = f(&self.value);
        let source = self.clone();
        Tree {
            value,
            children: Rc::new(move || {
                let f = Rc::clone(&f);
                source
                    .children()
                    .iter()
                    .map(|t| t.map(Rc::clone(&f)))
                    .collect()
            }),
        }
    }
}

/// Builds a shrink tree for an integer-like value `x` that shrinks toward
/// `origin`: first the origin itself, then binary steps closing the gap.
///
/// Arithmetic runs in `i128`, wide enough for every integer type the
/// strategies expose (`u64` fits; `u128` strategies clamp their span).
pub fn int_tree<T>(origin: i128, x: i128, back: fn(i128) -> T) -> Tree<T>
where
    T: Clone + 'static,
{
    let value = back(x);
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        if x != origin {
            out.push(int_tree(origin, origin, back));
            let mut delta = (x - origin) / 2;
            while delta != 0 {
                let candidate = x - delta;
                if candidate != origin {
                    out.push(int_tree(origin, candidate, back));
                }
                delta /= 2;
            }
        }
        out
    })
}

/// Combines two trees into a pair tree; the pair shrinks by shrinking the
/// left component first, then the right.
pub fn pair_tree<A, B>(a: Tree<A>, b: Tree<B>) -> Tree<(A, B)>
where
    A: Clone + 'static,
    B: Clone + 'static,
{
    let value = (a.value().clone(), b.value().clone());
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        for ash in a.children() {
            out.push(pair_tree(ash, b.clone()));
        }
        for bsh in b.children() {
            out.push(pair_tree(a.clone(), bsh));
        }
        out
    })
}

/// Combines element trees into a vector tree. Shrinks first by deleting
/// elements (down to `min_len`), then element-wise.
pub fn vec_tree<T>(min_len: usize, elems: Vec<Tree<T>>) -> Tree<Vec<T>>
where
    T: Clone + 'static,
{
    let value: Vec<T> = elems.iter().map(|t| t.value().clone()).collect();
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        let n = elems.len();
        // Delete a whole suffix first (fast length reduction), then single
        // elements, then shrink elements in place.
        if n > min_len {
            let half = (n + min_len) / 2;
            if half < n {
                out.push(vec_tree(min_len, elems[..half].to_vec()));
            }
            for i in (0..n).rev() {
                let mut fewer = elems.clone();
                fewer.remove(i);
                out.push(vec_tree(min_len, fewer));
            }
        }
        for (i, elem) in elems.iter().enumerate() {
            for shrunk in elem.children() {
                let mut smaller = elems.clone();
                smaller[i] = shrunk;
                out.push(vec_tree(min_len, smaller));
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_tree_shrinks_toward_origin() {
        let t = int_tree(0, 100, |x| x as u32);
        assert_eq!(*t.value(), 100);
        let kids = t.children();
        assert_eq!(*kids[0].value(), 0, "origin first");
        assert!(kids.iter().all(|k| *k.value() < 100));
    }

    #[test]
    fn pair_tree_shrinks_componentwise() {
        let t = pair_tree(int_tree(0, 4, |x| x as u8), int_tree(0, 2, |x| x as u8));
        assert_eq!(*t.value(), (4, 2));
        let values: Vec<(u8, u8)> = t.children().iter().map(|k| *k.value()).collect();
        assert!(values.contains(&(0, 2)));
        assert!(values.contains(&(4, 0)));
    }

    #[test]
    fn vec_tree_respects_min_len() {
        let elems = vec![int_tree(0, 1, |x| x as u8); 3];
        let t = vec_tree(2, elems);
        assert!(t.children().iter().all(|k| k.value().len() >= 2));
    }

    #[test]
    fn map_preserves_shrinks() {
        let t = int_tree(0, 10, |x| x as u32).map(Rc::new(|x: &u32| x * 2));
        assert_eq!(*t.value(), 20);
        assert_eq!(*t.children()[0].value(), 0);
    }
}
