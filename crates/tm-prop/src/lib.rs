//! A small, dependency-free property-testing harness.
//!
//! Mirrors the subset of the `proptest` surface this workspace uses, on
//! top of the in-house deterministic RNG ([`tm_rand`]):
//!
//! * strategies: integer range literals, [`any`], tuples,
//!   [`collection::vec`], [`option::of`], [`Just`], `prop_map`,
//!   [`prop_oneof!`];
//! * a seeded runner with **fixed default seeds** so failures reproduce
//!   byte-for-byte on any machine;
//! * greedy shrinking over lazy shrink trees, composing through every
//!   combinator;
//! * the [`tm_prop!`] macro mirroring `proptest!`.
//!
//! # Reproducing a failure
//!
//! A failing property prints its seed and case index, e.g.:
//!
//! ```text
//! tm-prop: property `my_crate::tests::round_trips` failed
//!   seed: 7957577529137699 / case 17 of 64
//!   reproduce with: TM_PROP_SEED=7957577529137699 TM_PROP_CASE=17 cargo test round_trips
//! ```
//!
//! Setting `TM_PROP_SEED` (and optionally `TM_PROP_CASE`) reruns exactly
//! that input. `TM_PROP_CASES` overrides the per-property case count.

mod runner;
mod strategy;
mod tree;

pub use runner::{run_named, Config};
pub use strategy::{any, one_of, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy, Union};
pub use tree::Tree;

/// Strategies over collections, mirroring `proptest::collection`.
pub mod collection {
    use std::fmt::Debug;
    use std::ops::Range;

    use tm_rand::{Rng, StdRng};

    use crate::strategy::Strategy;
    use crate::tree::{vec_tree, Tree};

    /// Generates a `Vec` whose length is drawn from `len` and whose
    /// elements come from `element`. Shrinks by removing elements first,
    /// then shrinking the survivors.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The result of [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn new_tree(&self, rng: &mut StdRng) -> Tree<Vec<S::Value>> {
            let n = rng.gen_range(self.len.start..self.len.end);
            let elems = (0..n).map(|_| self.element.new_tree(rng)).collect();
            vec_tree(self.len.start, elems)
        }
    }
}

/// Strategies over `Option`, mirroring `proptest::option`.
pub mod option {
    use tm_rand::{Rng, StdRng};

    use crate::strategy::Strategy;
    use crate::tree::Tree;

    /// Generates `Some` from the inner strategy three times out of four,
    /// `None` otherwise. `Some(x)` shrinks to `None` first, then through
    /// the inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The result of [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_tree(&self, rng: &mut StdRng) -> Tree<Option<S::Value>> {
            if rng.gen_range(0u32..4) == 0 {
                return Tree::leaf(None);
            }
            let inner = self.inner.new_tree(rng);
            some_tree(inner)
        }
    }

    fn some_tree<T: Clone + 'static>(inner: Tree<T>) -> Tree<Option<T>> {
        let value = Some(inner.value().clone());
        Tree::with_children(value, move || {
            let mut out = vec![Tree::leaf(None)];
            out.extend(inner.children().into_iter().map(some_tree));
            out
        })
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{any, one_of, Config, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, tm_prop};
}

// ---------- assertion + strategy macros ----------

/// Asserts a condition inside a property; failures are captured and
/// shrunk by the runner.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Chooses uniformly among strategies producing a common value type.
///
/// ```ignore
/// prop_oneof![
///     Just(Mode::A),
///     (0u8..4).prop_map(Mode::B),
/// ]
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests, mirroring `proptest!`.
///
/// ```ignore
/// tm_prop! {
///     #![tm_config(cases = 32)]
///
///     #[test]
///     fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
///         prop_assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! tm_prop {
    (#![tm_config(cases = $cases:expr)] $($rest:tt)*) => {
        $crate::tm_prop!{@each ($cases) $($rest)*}
    };
    (@each ($cases:expr)) => {};
    (@each ($cases:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __tm_config = $crate::Config::default();
            let __tm_cases: u32 = $cases;
            if __tm_cases > 0 {
                __tm_config.cases = __tm_cases;
            }
            $crate::run_named(
                concat!(module_path!(), "::", stringify!($name)),
                &__tm_config,
                &($($strat,)+),
                |__tm_value| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__tm_value);
                    $body
                },
            );
        }
        $crate::tm_prop!{@each ($cases) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::tm_prop!{@each (0u32) $($rest)*}
    };
}
