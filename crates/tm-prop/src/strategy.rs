//! Value-generation strategies.
//!
//! A [`Strategy`] produces a shrink [`Tree`] from a seeded RNG. The
//! built-in strategies mirror the `proptest` surface the workspace's
//! suites were written against: integer range literals (`0u16..8`,
//! `1u8..=255`), [`any`], tuples, [`collection::vec`], [`option::of`],
//! [`Just`], [`Strategy::prop_map`], and [`one_of`] (via the
//! [`prop_oneof!`](crate::prop_oneof) macro).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use tm_rand::{Rng, StdRng};

use crate::tree::{int_tree, pair_tree, Tree};

/// Generates values (with shrink structure) from a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug + 'static;

    /// Generates one value together with its shrink tree.
    fn new_tree(&self, rng: &mut StdRng) -> Tree<Self::Value>;

    /// Maps generated values through `f`; shrinking happens on the
    /// pre-image, so mapped strategies shrink for free.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Type-erases the strategy so differently-typed strategies producing
    /// the same value type can be mixed (the `prop_oneof!` building block).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F: ?Sized> {
    inner: S,
    f: Rc<F>,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug + 'static,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;

    fn new_tree(&self, rng: &mut StdRng) -> Tree<U> {
        let f = Rc::clone(&self.f);
        self.inner
            .new_tree(rng)
            .map(Rc::new(move |v: &S::Value| f(v.clone())))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

trait DynStrategy<T> {
    fn dyn_new_tree(&self, rng: &mut StdRng) -> Tree<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_tree(&self, rng: &mut StdRng) -> Tree<S::Value> {
        self.new_tree(rng)
    }
}

impl<T: Clone + Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_tree(&self, rng: &mut StdRng) -> Tree<T> {
        self.0.dyn_new_tree(rng)
    }
}

/// Chooses uniformly among the given strategies per generated case.
pub fn one_of<T: Clone + Debug + 'static>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!arms.is_empty(), "one_of requires at least one strategy");
    Union { arms }
}

/// The result of [`one_of`].
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Clone + Debug + 'static> Strategy for Union<T> {
    type Value = T;

    fn new_tree(&self, rng: &mut StdRng) -> Tree<T> {
        let idx = rng.gen_range(0usize..self.arms.len());
        self.arms[idx].new_tree(rng)
    }
}

/// Always produces the given value (never shrinks).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn new_tree(&self, _rng: &mut StdRng) -> Tree<T> {
        Tree::leaf(self.0.clone())
    }
}

// ---------- integer ranges ----------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_tree(&self, rng: &mut StdRng) -> Tree<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let x = rng.gen_range(self.start..self.end);
                int_tree(self.start as i128, x as i128, |v| v as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_tree(&self, rng: &mut StdRng) -> Tree<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let x = rng.gen_range((lo as u128)..(hi as u128) + 1) as $t;
                int_tree(lo as i128, x as i128, |v| v as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

// ---------- any::<T>() ----------

/// Types generatable over their full domain by [`any`].
pub trait Arbitrary: Clone + Debug + 'static {
    /// Generates an unconstrained shrink tree.
    fn arbitrary_tree(rng: &mut StdRng) -> Tree<Self>;
}

/// Produces any value of `T`, shrinking toward a canonical origin
/// (`0`/`false`/zeroed bytes).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The result of [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_tree(&self, rng: &mut StdRng) -> Tree<T> {
        T::arbitrary_tree(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_tree(rng: &mut StdRng) -> Tree<$t> {
                let x = rng.next_u64() as $t;
                int_tree(0, x as i128, |v| v as $t)
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary_tree(rng: &mut StdRng) -> Tree<bool> {
        if rng.gen::<bool>() {
            Tree::with_children(true, || vec![Tree::leaf(false)])
        } else {
            Tree::leaf(false)
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary_tree(rng: &mut StdRng) -> Tree<[u8; N]> {
        let mut bytes = [0u8; N];
        rng.fill_bytes(&mut bytes);
        byte_array_tree(bytes)
    }
}

fn byte_array_tree<const N: usize>(bytes: [u8; N]) -> Tree<[u8; N]> {
    Tree::with_children(bytes, move || {
        let mut out = Vec::new();
        if bytes.iter().any(|&b| b != 0) {
            out.push(Tree::leaf([0u8; N]));
            for i in 0..N {
                if bytes[i] != 0 {
                    let mut smaller = bytes;
                    smaller[i] /= 2;
                    out.push(byte_array_tree(smaller));
                }
            }
        }
        out
    })
}

// ---------- tuples ----------

macro_rules! impl_tuple_strategy {
    ($(($($S:ident $v:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            #[allow(non_snake_case)]
            fn new_tree(&self, rng: &mut StdRng) -> Tree<Self::Value> {
                let ($($S,)+) = self;
                $(let $v = $S.new_tree(rng);)+
                // Fold into nested pairs, then flatten with map so the
                // component shrink structure is preserved.
                impl_tuple_strategy!(@fold $($v),+)
            }
        }
    )*};
    (@fold $a:ident) => {
        $a.map(Rc::new(|v| (v.clone(),)))
    };
    (@fold $a:ident, $($rest:ident),+) => {{
        let nested = impl_tuple_strategy!(@nest $a, $($rest),+);
        nested.map(Rc::new(|v| impl_tuple_strategy!(@flatten v, $a, $($rest),+)))
    }};
    (@nest $a:ident) => { $a };
    (@nest $a:ident, $($rest:ident),+) => {
        pair_tree($a, impl_tuple_strategy!(@nest $($rest),+))
    };
    (@flatten $v:ident, $($name:ident),+) => {{
        impl_tuple_strategy!(@destructure $v; (); $($name),+)
    }};
    (@destructure $v:ident; ($($done:ident),*); $last:ident) => {{
        let $last = $v;
        ($($done.clone(),)* $last.clone(),)
    }};
    (@destructure $v:ident; ($($done:ident),*); $head:ident, $($rest:ident),+) => {{
        let ($head, $v) = $v;
        impl_tuple_strategy!(@destructure $v; ($($done,)* $head); $($rest),+)
    }};
}

impl_tuple_strategy! {
    (A a)
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
    (A a, B b, C c, D d, E e)
    (A a, B b, C c, D d, E e, F f)
    (A a, B b, C c, D d, E e, F f, G g)
    (A a, B b, C c, D d, E e, F f, G g, H h)
    (A a, B b, C c, D d, E e, F f, G g, H h, I i)
}
