//! The property runner: seeded case generation, failure capture, greedy
//! shrinking, and reproducible failure reports.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use tm_rand::StdRng;

use crate::strategy::Strategy;
use crate::tree::Tree;

/// The fixed default seed. Every property run is deterministic: same
/// binary, same seed, same cases — failures reproduce byte-for-byte on
/// any machine. Override per-run with `TM_PROP_SEED`.
pub const DEFAULT_SEED: u64 = 0x746d_7072_6f70_2131; // "tmprop!1"

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Cases to generate per property.
    pub cases: u32,
    /// Base seed for case generation.
    pub seed: u64,
    /// Upper bound on shrink candidates evaluated after a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: DEFAULT_SEED,
            max_shrink_iters: 4096,
        }
    }
}

thread_local! {
    /// Set while probing a candidate input, so expected panics stay quiet.
    static PROBING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses output for
/// panics raised while this thread is probing a candidate input.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !PROBING.with(|p| p.get()) {
                default_hook(info);
            }
        }));
    });
}

/// Runs `test` against the candidate value, capturing any panic message.
fn probe<V, F: Fn(&V)>(test: &F, value: &V) -> Result<(), String> {
    PROBING.with(|p| p.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| test(value)));
    PROBING.with(|p| p.set(false));
    match outcome {
        Ok(()) => Ok(()),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Greedily walks the shrink tree: repeatedly descends into the first
/// child that still fails, until no child fails or the budget runs out.
fn shrink<V: Clone + 'static, F: Fn(&V)>(
    mut current: Tree<V>,
    test: &F,
    budget: u32,
) -> (V, String) {
    let mut message =
        probe(test, current.value()).expect_err("shrink must start from a failing input");
    let mut spent = 0u32;
    'descend: loop {
        for child in current.children() {
            if spent >= budget {
                break 'descend;
            }
            spent += 1;
            if let Err(msg) = probe(test, child.value()) {
                message = msg;
                current = child;
                continue 'descend;
            }
        }
        break;
    }
    (current.value().clone(), message)
}

/// Runs a named property: generates `config.cases` inputs from the seeded
/// strategy and applies `test` to each. On failure, shrinks greedily and
/// panics with a reproducible report (seed, case index, original and
/// shrunk inputs, and the assertion message).
pub fn run_named<S: Strategy>(name: &str, config: &Config, strategy: &S, test: impl Fn(&S::Value)) {
    install_quiet_hook();

    let seed = match std::env::var("TM_PROP_SEED") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("bad TM_PROP_SEED: {v}")),
        Err(_) => config.seed,
    };
    let cases = match std::env::var("TM_PROP_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("bad TM_PROP_CASES: {v}")),
        Err(_) => config.cases,
    };
    let only_case: Option<u32> = std::env::var("TM_PROP_CASE").ok().map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("bad TM_PROP_CASE: {v}"))
    });

    // Each case draws from an independent stream of the base seed, so a
    // single (seed, case) pair pins down the input exactly, regardless of
    // how many cases ran before it.
    let root = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        if let Some(only) = only_case {
            if case != only {
                continue;
            }
        }
        // The property name participates in stream selection so sibling
        // properties in one file don't all see the same inputs.
        let mut rng = root.stream(u64::from(case)).stream(fnv1a(name.as_bytes()));
        let tree = strategy.new_tree(&mut rng);
        if probe(&test, tree.value()).is_err() {
            let original = format!("{:?}", tree.value());
            let (shrunk, message) = shrink(tree, &test, config.max_shrink_iters);
            panic!(
                "tm-prop: property `{name}` failed\n\
                 \x20 seed: {seed} / case {case} of {cases}\n\
                 \x20 reproduce with: TM_PROP_SEED={seed} TM_PROP_CASE={case} cargo test {short}\n\
                 \x20 original input: {original}\n\
                 \x20 shrunk input:   {shrunk:?}\n\
                 \x20 assertion: {message}",
                short = name.rsplit("::").next().unwrap_or(name),
            );
        }
    }
}

/// FNV-1a over bytes: a tiny, stable string hash for stream selection.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let config = Config::default();
        run_named("passing", &config, &(any::<u32>(),), |&(x,)| {
            prop_assert!(u64::from(x) <= u64::from(u32::MAX));
        });
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let config = Config::default();
        let outcome = std::panic::catch_unwind(|| {
            run_named("failing", &config, &(0u32..1000,), |&(x,)| {
                prop_assert!(x < 500, "x was {x}");
            });
        });
        let message = match outcome {
            Err(payload) => panic_message(payload.as_ref()),
            Ok(()) => panic!("property must fail"),
        };
        assert!(
            message.contains("TM_PROP_SEED="),
            "no repro line: {message}"
        );
        assert!(message.contains("shrunk input"), "no shrink: {message}");
        // Greedy shrink on x >= 500 must land exactly on the boundary.
        assert!(message.contains("(500,)"), "not minimal: {message}");
    }

    #[test]
    fn same_seed_generates_same_inputs() {
        let collect = || {
            let mut seen = Vec::new();
            let config = Config {
                cases: 16,
                ..Config::default()
            };
            // Capture inputs via a side channel.
            let cell = std::cell::RefCell::new(Vec::new());
            run_named("collect", &config, &(any::<u64>(),), |&(x,)| {
                cell.borrow_mut().push(x);
            });
            seen.extend(cell.into_inner());
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn shrinking_composes_through_map_and_vec() {
        let strategy = collection::vec((0u32..100).prop_map(|x| x * 2), 0..20);
        let config = Config::default();
        let outcome = std::panic::catch_unwind(|| {
            run_named("mapvec", &config, &(strategy,), |(xs,)| {
                let total: u32 = xs.iter().sum();
                prop_assert!(total < 40, "sum {total}");
            });
        });
        let message = match outcome {
            Err(payload) => panic_message(payload.as_ref()),
            Ok(()) => panic!("property must fail"),
        };
        // The minimal counterexample is a single element summing >= 40:
        // one even value in [40, 41] — i.e. exactly [40].
        assert!(message.contains("shrunk input:   ([40],)"), "{message}");
    }
}
