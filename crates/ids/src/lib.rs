//! A Snort-style network intrusion detection engine for the paper's
//! scan-detection experiments (§V-B2).
//!
//! The paper augments Snort's default rules with Proofpoint/EmergingThreats
//! best-practice scan rules and finds:
//!
//! * **TCP SYN scans above 2 scans/second are detected.**
//! * **ARP scans are never detected** — neither Snort nor Bro ships rules
//!   that reliably flag targeted ARP liveness probing; only network-wide
//!   ARP discovery floods (many distinct target IPs) are considered
//!   scanning at all.
//! * Frequent ICMP pings are "an obvious indicator of network
//!   reconnaissance" (low stealth).
//!
//! [`IdsEngine`] is a pure library: feed it `(time, frame)` observations
//! from any tap (e.g. a `netsim` frame recorder on the monitored link) and
//! read the alerts back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sdn_types::packet::{EthernetFrame, IcmpType, Payload, Transport};
use sdn_types::{Duration, IpAddr, SimTime};

/// Which rule fired.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum IdsRule {
    /// EmergingThreats-style TCP SYN scan: too many bare SYNs per second
    /// from one source.
    TcpSynScan,
    /// ICMP ping sweep / frequent echo requests from one source.
    IcmpPingSweep,
    /// ARP discovery flood: requests for many *distinct* IPs in a window.
    /// Targeted single-IP ARP probing never matches — the gap the paper's
    /// attacker exploits.
    ArpDiscoveryFlood,
    /// Zero-data TCP flows: handshakes torn down without payload.
    ZeroDataTcpFlows,
}

impl IdsRule {
    /// A Snort-style message for the rule.
    pub fn message(&self) -> &'static str {
        match self {
            IdsRule::TcpSynScan => "ET SCAN Potential SSH/Generic TCP SYN scan",
            IdsRule::IcmpPingSweep => "ICMP PING sweep detected",
            IdsRule::ArpDiscoveryFlood => "ARP discovery flood (network-wide scan)",
            IdsRule::ZeroDataTcpFlows => "Suspicious zero-data TCP sessions",
        }
    }
}

/// One IDS alert.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IdsAlert {
    /// When the rule fired.
    pub at: SimTime,
    /// The rule.
    pub rule: IdsRule,
    /// The offending source address.
    pub src: IpAddr,
    /// Detail text.
    pub detail: String,
}

/// Detection thresholds, following the paper's findings.
#[derive(Clone, Copy, Debug)]
pub struct IdsConfig {
    /// SYN probes per second from one source before alerting (paper: scans
    /// above 2/s were detected).
    pub syn_scan_per_sec: f64,
    /// Echo requests per second from one source before alerting.
    pub icmp_per_sec: f64,
    /// Distinct ARP target IPs within the window before alerting.
    pub arp_distinct_targets: usize,
    /// Zero-data TCP teardowns per minute before alerting.
    pub zero_data_flows_per_min: usize,
    /// Sliding-window length for rate rules.
    pub window: Duration,
    /// Minimum time between repeated alerts for the same (rule, source).
    pub alert_cooldown: Duration,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            syn_scan_per_sec: 2.0,
            icmp_per_sec: 2.0,
            arp_distinct_targets: 10,
            zero_data_flows_per_min: 30,
            window: Duration::from_secs(1),
            alert_cooldown: Duration::from_secs(5),
        }
    }
}

#[derive(Default)]
struct SrcState {
    syn_times: VecDeque<SimTime>,
    icmp_times: VecDeque<SimTime>,
    arp_targets: VecDeque<(SimTime, IpAddr)>,
    zero_data_teardowns: VecDeque<SimTime>,
    syn_seen_ports: BTreeSet<u16>,
}

/// The IDS engine.
pub struct IdsEngine {
    config: IdsConfig,
    per_src: BTreeMap<IpAddr, SrcState>,
    last_alert: BTreeMap<(IdsRule, IpAddr), SimTime>,
    alerts: Vec<IdsAlert>,
    /// Total frames observed.
    pub frames_observed: u64,
}

impl IdsEngine {
    /// Creates an engine.
    pub fn new(config: IdsConfig) -> Self {
        IdsEngine {
            config,
            per_src: BTreeMap::new(),
            last_alert: BTreeMap::new(),
            alerts: Vec::new(),
            frames_observed: 0,
        }
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[IdsAlert] {
        &self.alerts
    }

    /// Alerts for a specific rule.
    pub fn alerts_for(&self, rule: IdsRule) -> impl Iterator<Item = &IdsAlert> {
        self.alerts.iter().filter(move |a| a.rule == rule)
    }

    /// Whether any alert of `rule` has fired.
    pub fn detected(&self, rule: IdsRule) -> bool {
        self.alerts.iter().any(|a| a.rule == rule)
    }

    /// Feeds one observed frame to the engine.
    pub fn observe(&mut self, at: SimTime, frame: &EthernetFrame) {
        self.frames_observed += 1;
        match &frame.payload {
            Payload::Arp(arp) if arp.op == sdn_types::packet::ArpOp::Request => {
                self.observe_arp(at, arp.sender_ip, arp.target_ip);
            }
            Payload::Ipv4(ip) => match &ip.transport {
                Transport::Icmp(icmp) if icmp.icmp_type == IcmpType::EchoRequest => {
                    self.observe_icmp(at, ip.src);
                }
                Transport::Tcp(tcp) => {
                    if tcp.is_syn() {
                        self.observe_syn(at, ip.src, tcp.dst_port);
                    } else if tcp.is_rst() {
                        self.observe_rst(at, ip.dst);
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    /// The (exclusive) start of the sliding window ending at `at`: an event
    /// exactly one window ago has aged out.
    fn window_start(&self, at: SimTime) -> SimTime {
        SimTime::from_nanos(
            at.as_nanos()
                .saturating_sub(self.config.window.as_nanos())
                .saturating_add(1),
        )
    }

    fn try_alert(&mut self, at: SimTime, rule: IdsRule, src: IpAddr, detail: String) {
        if let Some(last) = self.last_alert.get(&(rule, src)) {
            if at.since(*last) < self.config.alert_cooldown {
                return;
            }
        }
        self.last_alert.insert((rule, src), at);
        self.alerts.push(IdsAlert {
            at,
            rule,
            src,
            detail,
        });
    }

    fn observe_syn(&mut self, at: SimTime, src: IpAddr, dst_port: u16) {
        let start = self.window_start(at);
        let window_secs = self.config.window.as_secs_f64();
        let threshold = self.config.syn_scan_per_sec;
        let count = {
            let state = self.per_src.entry(src).or_default();
            state.syn_times.push_back(at);
            state.syn_seen_ports.insert(dst_port);
            while state.syn_times.front().is_some_and(|t| *t < start) {
                state.syn_times.pop_front();
            }
            state.syn_times.len()
        };
        let rate = count as f64 / window_secs;
        if rate > threshold {
            self.try_alert(
                at,
                IdsRule::TcpSynScan,
                src,
                format!("{count} bare SYNs in {window_secs:.0}s from {src} (rate {rate:.1}/s)"),
            );
        }
    }

    fn observe_rst(&mut self, at: SimTime, scanned_by: IpAddr) {
        // An RST answering a probe closes a zero-data exchange; attribute to
        // the prober (the destination of the RST).
        let per_min_limit = self.config.zero_data_flows_per_min;
        let count = {
            let state = self.per_src.entry(scanned_by).or_default();
            state.zero_data_teardowns.push_back(at);
            let minute_ago = SimTime::from_nanos(at.as_nanos().saturating_sub(60_000_000_000));
            while state
                .zero_data_teardowns
                .front()
                .is_some_and(|t| *t < minute_ago)
            {
                state.zero_data_teardowns.pop_front();
            }
            state.zero_data_teardowns.len()
        };
        if count > per_min_limit {
            self.try_alert(
                at,
                IdsRule::ZeroDataTcpFlows,
                scanned_by,
                format!("{count} zero-data TCP teardowns/min toward {scanned_by}"),
            );
        }
    }

    fn observe_icmp(&mut self, at: SimTime, src: IpAddr) {
        let start = self.window_start(at);
        let window_secs = self.config.window.as_secs_f64();
        let threshold = self.config.icmp_per_sec;
        let count = {
            let state = self.per_src.entry(src).or_default();
            state.icmp_times.push_back(at);
            while state.icmp_times.front().is_some_and(|t| *t < start) {
                state.icmp_times.pop_front();
            }
            state.icmp_times.len()
        };
        let rate = count as f64 / window_secs;
        if rate > threshold {
            self.try_alert(
                at,
                IdsRule::IcmpPingSweep,
                src,
                format!("{count} echo requests in {window_secs:.0}s from {src}"),
            );
        }
    }

    fn observe_arp(&mut self, at: SimTime, src: IpAddr, target: IpAddr) {
        // ARP scan detection looks for *network-wide discovery*: many
        // distinct target IPs. A targeted liveness probe re-ARPs one IP and
        // never accumulates distinct targets.
        let start = self.window_start(at);
        let limit = self.config.arp_distinct_targets;
        let distinct = {
            let state = self.per_src.entry(src).or_default();
            state.arp_targets.push_back((at, target));
            while state.arp_targets.front().is_some_and(|(t, _)| *t < start) {
                state.arp_targets.pop_front();
            }
            state
                .arp_targets
                .iter()
                .map(|(_, ip)| *ip)
                .collect::<BTreeSet<_>>()
                .len()
        };
        if distinct >= limit {
            self.try_alert(
                at,
                IdsRule::ArpDiscoveryFlood,
                src,
                format!("ARP requests for {distinct} distinct IPs from {src}"),
            );
        }
    }
}

/// The qualitative stealth ratings of Table I.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Stealth {
    /// Likely flagged by standard IDS rules.
    Low,
    /// Flagged only by specialized rules.
    Medium,
    /// No practical detection rules exist.
    High,
    /// Attacker is not even attributable (indirection via a zombie).
    VeryHigh,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::packet::{ArpPacket, IcmpPacket, Ipv4Packet, TcpSegment};
    use sdn_types::MacAddr;

    fn syn_frame(src: IpAddr, dst: IpAddr, port: u16) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Payload::Ipv4(Ipv4Packet::new(
                src,
                dst,
                Transport::Tcp(TcpSegment::syn(40000, port, 1)),
            )),
        )
    }

    fn arp_frame(src: IpAddr, target: IpAddr) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::BROADCAST,
            Payload::Arp(ArpPacket::request(MacAddr::from_index(1), src, target)),
        )
    }

    fn icmp_frame(src: IpAddr, dst: IpAddr) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Payload::Ipv4(Ipv4Packet::new(
                src,
                dst,
                Transport::Icmp(IcmpPacket::echo_request(1, 1, vec![])),
            )),
        )
    }

    const ATTACKER: IpAddr = IpAddr::new(10, 0, 0, 66);
    const VICTIM: IpAddr = IpAddr::new(10, 0, 0, 1);

    /// §V-B2: SYN scans above 2/s are detected.
    #[test]
    fn syn_scan_above_2_per_sec_detected() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        // 5 SYNs within one second.
        for i in 0..5 {
            ids.observe(
                SimTime::from_millis(i * 200),
                &syn_frame(ATTACKER, VICTIM, 80),
            );
        }
        assert!(ids.detected(IdsRule::TcpSynScan));
    }

    #[test]
    fn syn_scan_at_or_below_2_per_sec_undetected() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        // 1 SYN every 500 ms = exactly 2/s -> not *above* threshold.
        for i in 0..20 {
            ids.observe(
                SimTime::from_millis(i * 500),
                &syn_frame(ATTACKER, VICTIM, 80),
            );
        }
        assert!(!ids.detected(IdsRule::TcpSynScan));
    }

    /// §V-B2: targeted ARP liveness probing at 20/s stays undetected.
    #[test]
    fn targeted_arp_probing_never_detected() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        // One ARP every 50 ms for 10 seconds — the paper's chosen probe rate.
        for i in 0..200 {
            ids.observe(SimTime::from_millis(i * 50), &arp_frame(ATTACKER, VICTIM));
        }
        assert!(ids.alerts().is_empty(), "{:?}", ids.alerts());
    }

    #[test]
    fn network_wide_arp_discovery_is_detected() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        for i in 0..50u16 {
            let target = IpAddr::new(10, 0, 0, (i % 250) as u8);
            ids.observe(
                SimTime::from_millis(u64::from(i) * 10),
                &arp_frame(ATTACKER, target),
            );
        }
        assert!(ids.detected(IdsRule::ArpDiscoveryFlood));
    }

    #[test]
    fn frequent_icmp_is_low_stealth() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        for i in 0..10 {
            ids.observe(SimTime::from_millis(i * 100), &icmp_frame(ATTACKER, VICTIM));
        }
        assert!(ids.detected(IdsRule::IcmpPingSweep));
    }

    #[test]
    fn occasional_icmp_is_fine() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        for i in 0..10 {
            ids.observe(SimTime::from_secs(i * 2), &icmp_frame(ATTACKER, VICTIM));
        }
        assert!(!ids.detected(IdsRule::IcmpPingSweep));
    }

    #[test]
    fn alert_cooldown_suppresses_repeats() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        for i in 0..50 {
            ids.observe(
                SimTime::from_millis(i * 100),
                &syn_frame(ATTACKER, VICTIM, 80),
            );
        }
        // 5 seconds of sustained scanning with a 5s cooldown: 1 alert.
        assert_eq!(ids.alerts_for(IdsRule::TcpSynScan).count(), 1);
    }

    #[test]
    fn sources_are_tracked_independently() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        let other = IpAddr::new(10, 0, 0, 77);
        for i in 0..5 {
            ids.observe(
                SimTime::from_millis(i * 200),
                &syn_frame(ATTACKER, VICTIM, 80),
            );
            // `other` pings slowly (well under the 2/s threshold).
            ids.observe(
                SimTime::from_millis(i * 700 + 1),
                &icmp_frame(other, VICTIM),
            );
        }
        assert!(ids.detected(IdsRule::TcpSynScan));
        let offenders: Vec<IpAddr> = ids.alerts().iter().map(|a| a.src).collect();
        assert!(offenders.iter().all(|ip| *ip == ATTACKER));
    }
}

#[cfg(test)]
mod zero_data_tests {
    use super::*;
    use sdn_types::packet::{EthernetFrame, Ipv4Packet, Payload, TcpSegment, Transport};
    use sdn_types::MacAddr;

    const SCANNER: IpAddr = IpAddr::new(10, 0, 0, 66);
    const TARGET: IpAddr = IpAddr::new(10, 0, 0, 1);

    fn rst_toward_scanner(seq: u32) -> EthernetFrame {
        // The target's RST answering a zero-data probe (dst = the prober).
        let syn = TcpSegment::syn(40_000, 80, seq);
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(66),
            Payload::Ipv4(Ipv4Packet::new(
                TARGET,
                SCANNER,
                Transport::Tcp(TcpSegment::rst_to(&syn)),
            )),
        )
    }

    #[test]
    fn sustained_zero_data_teardowns_alert() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        // 40 RSTs toward the scanner within a minute (limit is 30/min).
        for i in 0..40u32 {
            ids.observe(
                SimTime::from_millis(u64::from(i) * 1_000),
                &rst_toward_scanner(i),
            );
        }
        assert!(ids.detected(IdsRule::ZeroDataTcpFlows));
    }

    #[test]
    fn occasional_resets_are_normal() {
        let mut ids = IdsEngine::new(IdsConfig::default());
        // A handful of RSTs spread over minutes: ordinary connection churn.
        for i in 0..10u32 {
            ids.observe(
                SimTime::from_secs(u64::from(i) * 30),
                &rst_toward_scanner(i),
            );
        }
        assert!(!ids.detected(IdsRule::ZeroDataTcpFlows));
    }
}
