//! Property-based tests: every packet type must round-trip byte-exactly
//! through encode/parse for arbitrary field values.

use tm_prop::prelude::*;

use sdn_types::crypto::{Key, StreamCipher};
use sdn_types::packet::{
    ArpOp, ArpPacket, EthernetFrame, IcmpPacket, IcmpType, Ipv4Packet, LldpPacket, LldpTlv,
    Payload, TcpFlags, TcpSegment, TlvType, Transport, UdpDatagram,
};
use sdn_types::{DatapathId, IpAddr, MacAddr, PortNo, SimTime};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ip() -> impl Strategy<Value = IpAddr> {
    any::<[u8; 4]>().prop_map(IpAddr::from)
}

fn arb_arp() -> impl Strategy<Value = ArpPacket> {
    (any::<bool>(), arb_mac(), arb_ip(), arb_mac(), arb_ip()).prop_map(
        |(is_req, sender_mac, sender_ip, target_mac, target_ip)| ArpPacket {
            op: if is_req { ArpOp::Request } else { ArpOp::Reply },
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        },
    )
}

fn arb_icmp() -> impl Strategy<Value = IcmpPacket> {
    (
        prop_oneof![
            Just(IcmpType::EchoRequest),
            Just(IcmpType::EchoReply),
            any::<u8>().prop_map(IcmpType::Unreachable),
        ],
        any::<u16>(),
        any::<u16>(),
        collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(icmp_type, identifier, sequence, data)| IcmpPacket {
            icmp_type,
            identifier,
            sequence,
            data,
        })
}

fn arb_tcp() -> impl Strategy<Value = TcpSegment> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        any::<u16>(),
        collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(
            |(src_port, dst_port, seq, ack, flags, window, data)| TcpSegment {
                src_port,
                dst_port,
                seq,
                ack,
                flags: TcpFlags {
                    fin: flags & 1 != 0,
                    syn: flags & 2 != 0,
                    rst: flags & 4 != 0,
                    psh: flags & 8 != 0,
                    ack: flags & 16 != 0,
                },
                window,
                data,
            },
        )
}

fn arb_udp() -> impl Strategy<Value = UdpDatagram> {
    (
        any::<u16>(),
        any::<u16>(),
        collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(src_port, dst_port, data)| UdpDatagram {
            src_port,
            dst_port,
            data,
        })
}

fn arb_transport() -> impl Strategy<Value = Transport> {
    prop_oneof![
        arb_icmp().prop_map(Transport::Icmp),
        arb_tcp().prop_map(Transport::Tcp),
        arb_udp().prop_map(Transport::Udp),
        (200u8..250, collection::vec(any::<u8>(), 0..32))
            .prop_map(|(protocol, data)| Transport::Raw { protocol, data }),
    ]
}

fn arb_lldp() -> impl Strategy<Value = LldpPacket> {
    (
        any::<u64>(),
        any::<u16>(),
        1u16..=30000,
        option::of(any::<u64>()),
        collection::vec((4u8..120, collection::vec(any::<u8>(), 0..32)), 0..3),
    )
        .prop_map(|(dpid, port, ttl_secs, auth_tag, extras)| {
            let mut pkt = LldpPacket::new(DatapathId::new(dpid), PortNo::new(port));
            pkt.ttl_secs = ttl_secs;
            pkt.auth_tag = auth_tag;
            pkt.extra_tlvs = extras
                .into_iter()
                .map(|(t, v)| LldpTlv::new(TlvType(t), v))
                .collect();
            pkt
        })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        arb_arp().prop_map(Payload::Arp),
        (arb_ip(), arb_ip(), 1u8..=255, any::<u16>(), arb_transport()).prop_map(
            |(src, dst, ttl, ident, transport)| {
                Payload::Ipv4(Ipv4Packet {
                    src,
                    dst,
                    ttl,
                    ident,
                    transport,
                })
            },
        ),
        arb_lldp().prop_map(Payload::Lldp),
        (collection::vec(any::<u8>(), 0..64)).prop_map(|data| Payload::Opaque {
            ethertype: 0x1234,
            data
        }),
    ]
}

tm_prop! {
    #[test]
    fn ethernet_frame_round_trips(src in arb_mac(), dst in arb_mac(), payload in arb_payload()) {
        let frame = EthernetFrame::new(src, dst, payload);
        let wire = frame.encode();
        let parsed = EthernetFrame::parse(&wire).expect("encoded frame must parse");
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn encoding_is_deterministic(src in arb_mac(), dst in arb_mac(), payload in arb_payload()) {
        let frame = EthernetFrame::new(src, dst, payload);
        prop_assert_eq!(frame.encode(), frame.encode());
    }

    #[test]
    fn lldp_signature_covers_identity(dpid in any::<u64>(), port in any::<u16>(), seed in any::<u64>()) {
        let key = Key::from_seed(seed);
        let pkt = LldpPacket::new(DatapathId::new(dpid), PortNo::new(port)).signed(key);
        prop_assert!(pkt.verify(key));
        let mut forged = pkt.clone();
        forged.dpid = DatapathId::new(dpid.wrapping_add(1));
        prop_assert!(!forged.verify(key));
        let mut forged_port = pkt;
        forged_port.port = PortNo::new(port.wrapping_add(1));
        prop_assert!(!forged_port.verify(key));
    }

    #[test]
    fn sealed_timestamps_round_trip(ns in any::<u64>(), seed in any::<u64>(), dpid in any::<u64>()) {
        let key = Key::from_seed(seed);
        let pkt = LldpPacket::new(DatapathId::new(dpid), PortNo::new(1))
            .with_timestamp(key, SimTime::from_nanos(ns));
        prop_assert_eq!(pkt.open_timestamp(key), Some(SimTime::from_nanos(ns)));
    }

    #[test]
    fn stream_cipher_is_an_involution(seed in any::<u64>(), nonce in any::<u64>(), mut data in collection::vec(any::<u8>(), 0..128)) {
        let cipher = StreamCipher::new(Key::from_seed(seed));
        let original = data.clone();
        cipher.apply(nonce, &mut data);
        cipher.apply(nonce, &mut data);
        prop_assert_eq!(data, original);
    }

    #[test]
    fn parse_arbitrary_bytes_never_panics(bytes in collection::vec(any::<u8>(), 0..256)) {
        // Parsing hostile input must fail gracefully, never panic.
        let _ = EthernetFrame::parse(&bytes);
        let _ = LldpPacket::parse(&bytes);
        let _ = ArpPacket::parse(&bytes);
        let _ = Ipv4Packet::parse(&bytes);
        let _ = TcpSegment::parse(&bytes);
        let _ = UdpDatagram::parse(&bytes);
        let _ = IcmpPacket::parse(&bytes);
    }
}
