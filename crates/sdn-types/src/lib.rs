//! Packet and addressing model for the TopoMirage SDN simulation.
//!
//! This crate provides the wire-level vocabulary shared by every other crate
//! in the workspace:
//!
//! * Addressing newtypes — [`MacAddr`], [`IpAddr`], [`DatapathId`],
//!   [`PortNo`] — with ordering, formatting, and parsing.
//! * A byte-accurate packet model — [`packet::EthernetFrame`] carrying
//!   [`packet::ArpPacket`], [`packet::Ipv4Packet`] (with ICMP / TCP / UDP
//!   payloads), or [`packet::LldpPacket`].
//! * LLDP Type-Length-Value structures including the two custom TLVs the
//!   paper's defenses rely on: an HMAC authentication TLV (TopoGuard) and an
//!   encrypted departure-timestamp TLV (TopoGuard+'s Link Latency Inspector).
//!
//! All packet types encode to and parse from big-endian wire bytes, so the
//! simulation moves real byte buffers around and defenses can only see what
//! a real controller would see.
//!
//! # Example
//!
//! ```
//! use sdn_types::{MacAddr, IpAddr};
//! use sdn_types::packet::{EthernetFrame, EtherType, Payload, ArpPacket};
//!
//! let src = MacAddr::new([0xAA; 6]);
//! let arp = ArpPacket::request(src, IpAddr::new(10, 0, 0, 1), IpAddr::new(10, 0, 0, 2));
//! let frame = EthernetFrame::new(src, MacAddr::BROADCAST, Payload::Arp(arp));
//! let bytes = frame.encode();
//! let parsed = EthernetFrame::parse(&bytes).unwrap();
//! assert_eq!(parsed.ethertype(), EtherType::ARP);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod buf;
pub mod crypto;
mod error;
mod ids;
pub mod packet;
pub mod time;

pub use addr::{IpAddr, MacAddr};
pub use error::ParseError;
pub use ids::{DatapathId, HostId, NodeId, PortNo, SwitchPort};
pub use time::{Duration, SimTime};
