//! Layer-2 and layer-3 address newtypes.

use std::fmt;
use std::str::FromStr;

use crate::ParseError;

/// A 48-bit IEEE 802 MAC address.
///
/// `MacAddr` is `Copy`, ordered, and hashable so it can serve as a key in
/// host-tracking tables. The all-ones address is exposed as
/// [`MacAddr::BROADCAST`]; the LLDP nearest-bridge multicast group used by
/// link discovery is [`MacAddr::LLDP_MULTICAST`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The Ethernet broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The IEEE 802.1AB "nearest bridge" multicast address used as the
    /// destination of LLDP frames, `01:80:c2:00:00:0e`.
    pub const LLDP_MULTICAST: MacAddr = MacAddr([0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e]);

    /// The all-zero address, used as a placeholder in ARP requests.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates a MAC address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Derives a deterministic locally-administered unicast address from an
    /// index, useful for generating distinct host addresses in tests and
    /// workload generators.
    pub const fn from_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        // 0x02 sets the locally-administered bit and clears multicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Returns the six octets of the address.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` if this is the broadcast address.
    pub const fn is_broadcast(&self) -> bool {
        matches!(self.0, [0xff, 0xff, 0xff, 0xff, 0xff, 0xff])
    }

    /// Returns `true` if the group (multicast) bit is set. The broadcast
    /// address is also a multicast address.
    pub const fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns `true` for unicast (non-multicast) addresses.
    pub const fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }

    /// Parses from wire bytes. Returns `None` if `bytes` is shorter than 6.
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        let octets: [u8; 6] = bytes.get(..6)?.try_into().ok()?;
        Some(MacAddr(octets))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

impl FromStr for MacAddr {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in &mut octets {
            let part = parts
                .next()
                .ok_or_else(|| ParseError::bad_field("MacAddr", "too few octets"))?;
            *octet = u8::from_str_radix(part, 16)
                .map_err(|_| ParseError::bad_field("MacAddr", "invalid hex octet"))?;
        }
        if parts.next().is_some() {
            return Err(ParseError::bad_field("MacAddr", "too many octets"));
        }
        Ok(MacAddr(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// An IPv4 address.
///
/// A thin newtype over four octets rather than [`std::net::Ipv4Addr`] so
/// wire encoding, text formatting, and `const` construction stay under
/// this crate's control.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IpAddr([u8; 4]);

impl IpAddr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: IpAddr = IpAddr([0; 4]);

    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: IpAddr = IpAddr([0xff; 4]);

    /// Creates an address from its four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr([a, b, c, d])
    }

    /// Derives a deterministic `10.0.x.y` address from an index, mirroring
    /// Mininet's default host numbering.
    pub const fn from_index(index: u16) -> Self {
        let b = index.to_be_bytes();
        IpAddr([10, 0, b[0], b[1]])
    }

    /// Returns the four octets.
    pub const fn octets(&self) -> [u8; 4] {
        self.0
    }

    /// Returns the address as a big-endian `u32`.
    pub const fn to_u32(&self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Builds an address from a big-endian `u32`.
    pub const fn from_u32(raw: u32) -> Self {
        IpAddr(raw.to_be_bytes())
    }

    /// Returns `true` if both addresses fall in the same `/prefix` network.
    pub fn same_subnet(&self, other: &IpAddr, prefix: u8) -> bool {
        if prefix == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - prefix.min(32) as u32);
        (self.to_u32() & mask) == (other.to_u32() & mask)
    }

    /// Parses from wire bytes. Returns `None` if `bytes` is shorter than 4.
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        let octets: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
        Some(IpAddr(octets))
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Debug for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IpAddr({self})")
    }
}

impl FromStr for IpAddr {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for octet in &mut octets {
            let part = parts
                .next()
                .ok_or_else(|| ParseError::bad_field("IpAddr", "too few octets"))?;
            *octet = part
                .parse()
                .map_err(|_| ParseError::bad_field("IpAddr", "invalid decimal octet"))?;
        }
        if parts.next().is_some() {
            return Err(ParseError::bad_field("IpAddr", "too many octets"));
        }
        Ok(IpAddr(octets))
    }
}

impl From<[u8; 4]> for IpAddr {
    fn from(octets: [u8; 4]) -> Self {
        IpAddr(octets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_round_trips() {
        let mac = MacAddr::new([0xaa, 0xbb, 0x0c, 0x1d, 0x2e, 0x3f]);
        let shown = mac.to_string();
        assert_eq!(shown, "aa:bb:0c:1d:2e:3f");
        assert_eq!(shown.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn mac_parse_rejects_malformed() {
        assert!("aa:bb:cc".parse::<MacAddr>().is_err());
        assert!("aa:bb:cc:dd:ee:ff:00".parse::<MacAddr>().is_err());
        assert!("zz:bb:cc:dd:ee:ff".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::LLDP_MULTICAST.is_multicast());
        assert!(!MacAddr::LLDP_MULTICAST.is_broadcast());
        assert!(MacAddr::from_index(7).is_unicast());
    }

    #[test]
    fn mac_from_index_is_injective_for_small_indices() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
    }

    #[test]
    fn ip_display_round_trips() {
        let ip = IpAddr::new(10, 0, 0, 1);
        assert_eq!(ip.to_string(), "10.0.0.1");
        assert_eq!("10.0.0.1".parse::<IpAddr>().unwrap(), ip);
    }

    #[test]
    fn ip_parse_rejects_malformed() {
        assert!("10.0.0".parse::<IpAddr>().is_err());
        assert!("10.0.0.1.2".parse::<IpAddr>().is_err());
        assert!("10.0.0.256".parse::<IpAddr>().is_err());
    }

    #[test]
    fn ip_u32_round_trips() {
        let ip = IpAddr::new(192, 168, 1, 42);
        assert_eq!(IpAddr::from_u32(ip.to_u32()), ip);
    }

    #[test]
    fn ip_same_subnet() {
        let a = IpAddr::new(10, 0, 0, 1);
        let b = IpAddr::new(10, 0, 0, 200);
        let c = IpAddr::new(10, 0, 1, 1);
        assert!(a.same_subnet(&b, 24));
        assert!(!a.same_subnet(&c, 24));
        assert!(a.same_subnet(&c, 16));
        assert!(a.same_subnet(&c, 0));
    }

    #[test]
    fn from_slice_requires_enough_bytes() {
        assert!(MacAddr::from_slice(&[1, 2, 3]).is_none());
        assert!(IpAddr::from_slice(&[1, 2, 3]).is_none());
        assert_eq!(
            MacAddr::from_slice(&[1, 2, 3, 4, 5, 6, 7]),
            Some(MacAddr::new([1, 2, 3, 4, 5, 6]))
        );
    }
}
