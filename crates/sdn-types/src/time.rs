//! Virtual time for the discrete-event simulation.
//!
//! All timing in the reproduction uses a nanosecond-resolution virtual clock
//! so that every experiment is deterministic under a fixed RNG seed. The
//! paper's measurements (milliseconds and microseconds) map exactly onto
//! [`Duration`] values.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn since(&self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(&self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond and saturating at zero for negative inputs.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            return Duration::ZERO;
        }
        Duration((ms * 1e6).round() as u64)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return Duration::ZERO;
        }
        Duration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    pub const fn mul(&self, factor: u64) -> Duration {
        Duration(self.0 * factor)
    }

    /// Divides the duration by an integer divisor (truncating).
    pub const fn div(&self, divisor: u64) -> Duration {
        Duration(self.0 / divisor)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Duration({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(Duration::from_micros(1500).as_millis(), 1);
        assert_eq!(Duration::from_millis(1).as_micros(), 1000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
        // Subtraction saturates rather than panicking.
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_millis(5),
            Duration::ZERO
        );
    }

    #[test]
    fn float_constructors_saturate() {
        assert_eq!(Duration::from_millis_f64(-2.0), Duration::ZERO);
        assert_eq!(Duration::from_millis_f64(1.5).as_micros(), 1500);
        assert_eq!(Duration::from_secs_f64(0.25).as_millis(), 250);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(3);
        assert_eq!(late.since(early), Duration::from_millis(2));
        assert_eq!(early.since(late), Duration::ZERO);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Duration::from_nanos(12).to_string(), "12ns");
        assert_eq!(Duration::from_micros(12).to_string(), "12.000us");
        assert_eq!(Duration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Duration::from_secs(12).to_string(), "12.000s");
    }
}
