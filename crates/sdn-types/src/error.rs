//! Parse errors for wire formats.

use std::fmt;

/// An error produced while parsing a packet or address from wire bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// Which structure was being parsed.
        what: &'static str,
        /// How many bytes were required.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// A field held a value that is not valid for the structure.
    BadField {
        /// Which structure was being parsed.
        what: &'static str,
        /// Description of the problem.
        detail: &'static str,
    },
    /// The overall structure is malformed (e.g. TLV list without terminator).
    Malformed {
        /// Which structure was being parsed.
        what: &'static str,
        /// Description of the problem.
        detail: &'static str,
    },
}

impl ParseError {
    /// Convenience constructor for [`ParseError::Truncated`].
    pub fn truncated(what: &'static str, needed: usize, available: usize) -> Self {
        ParseError::Truncated {
            what,
            needed,
            available,
        }
    }

    /// Convenience constructor for [`ParseError::BadField`].
    pub fn bad_field(what: &'static str, detail: &'static str) -> Self {
        ParseError::BadField { what, detail }
    }

    /// Convenience constructor for [`ParseError::Malformed`].
    pub fn malformed(what: &'static str, detail: &'static str) -> Self {
        ParseError::Malformed { what, detail }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, only {available} available"
            ),
            ParseError::BadField { what, detail } => {
                write!(f, "bad field in {what}: {detail}")
            }
            ParseError::Malformed { what, detail } => {
                write!(f, "malformed {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ParseError::truncated("EthernetFrame", 14, 3);
        assert!(err.to_string().contains("EthernetFrame"));
        assert!(err.to_string().contains("14"));
        let err = ParseError::bad_field("ArpPacket", "unknown opcode");
        assert!(err.to_string().contains("unknown opcode"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&ParseError::malformed("Lldp", "no end TLV"));
    }
}
