//! In-house byte-buffer helpers (the workspace's replacement for the
//! `bytes` crate).
//!
//! The simulation only ever builds wire images append-only and then reads
//! them as `&[u8]`, so two small types cover every use:
//!
//! * [`BytesMut`] — a growable big-endian append buffer
//!   (`put_u8`/`put_u16`/`put_u32`/`put_u64`/`put_slice`);
//! * [`Bytes`] — a frozen, cheaply-cloneable immutable byte string.
//!
//! Both deref to `[u8]`, so parsers take plain `&[u8]` and stay agnostic.

use std::ops::Deref;
use std::sync::Arc;

/// A growable append-only buffer with big-endian integer writers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a `u16` big-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` big-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` big-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
        }
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// The written bytes as a plain vector copy.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte string; clones share the allocation.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates from a vector of bytes.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
        }
    }

    /// Copies from a slice.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a plain vector copy.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_writers_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(&[9, 10]);
        let bytes = buf.freeze();
        assert_eq!(
            &bytes[..],
            &[
                0xab, 0x12, 0x34, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                0x08, 9, 10
            ]
        );
        assert_eq!(bytes.len(), 17);
    }

    #[test]
    fn frozen_bytes_compare_and_share() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"hello");
        let a = buf.freeze();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, b"hello".to_vec());
        assert_eq!(a, *b"hello");
    }

    #[test]
    fn deref_lets_parsers_take_slices() {
        fn parse(bytes: &[u8]) -> usize {
            bytes.len()
        }
        let mut buf = BytesMut::new();
        buf.put_u32(7);
        assert_eq!(parse(&buf), 4);
        assert_eq!(parse(&buf.freeze()), 4);
    }
}
