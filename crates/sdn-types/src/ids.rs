//! Identifier newtypes for switches, ports, hosts, and simulation nodes.

use std::fmt;

/// A 64-bit OpenFlow datapath identifier naming a switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatapathId(pub u64);

impl DatapathId {
    /// Creates a datapath identifier from its raw value.
    pub const fn new(raw: u64) -> Self {
        DatapathId(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(&self) -> u64 {
        self.0
    }

    /// Returns the identifier encoded as big-endian bytes, as carried in the
    /// Floodlight-style LLDP chassis/DPID TLV.
    pub const fn to_bytes(&self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Parses from big-endian wire bytes; `None` if fewer than 8 bytes.
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        let raw: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
        Some(DatapathId(u64::from_be_bytes(raw)))
    }
}

impl fmt::Display for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Debug for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DatapathId({self})")
    }
}

impl From<u64> for DatapathId {
    fn from(raw: u64) -> Self {
        DatapathId(raw)
    }
}

/// An OpenFlow port number on a switch.
///
/// Reserved values follow OpenFlow 1.0: [`PortNo::CONTROLLER`],
/// [`PortNo::FLOOD`], [`PortNo::ALL`], and [`PortNo::LOCAL`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortNo(pub u16);

impl PortNo {
    /// Send to the controller (reserved port `0xfffd`).
    pub const CONTROLLER: PortNo = PortNo(0xfffd);
    /// Flood on all physical ports except the ingress port (`0xfffb`).
    pub const FLOOD: PortNo = PortNo(0xfffb);
    /// All physical ports including the ingress port (`0xfffc`).
    pub const ALL: PortNo = PortNo(0xfffc);
    /// The switch-local port (`0xfffe`).
    pub const LOCAL: PortNo = PortNo(0xfffe);
    /// Wildcard meaning "no port" / "any port" (`0xffff`).
    pub const NONE: PortNo = PortNo(0xffff);

    /// Creates a port number.
    pub const fn new(raw: u16) -> Self {
        PortNo(raw)
    }

    /// Returns the raw value.
    pub const fn raw(&self) -> u16 {
        self.0
    }

    /// Returns `true` for physical (non-reserved) port numbers.
    pub const fn is_physical(&self) -> bool {
        self.0 < 0xff00
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortNo::CONTROLLER => write!(f, "CONTROLLER"),
            PortNo::FLOOD => write!(f, "FLOOD"),
            PortNo::ALL => write!(f, "ALL"),
            PortNo::LOCAL => write!(f, "LOCAL"),
            PortNo::NONE => write!(f, "NONE"),
            PortNo(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Debug for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PortNo({self})")
    }
}

impl From<u16> for PortNo {
    fn from(raw: u16) -> Self {
        PortNo(raw)
    }
}

/// A network location: a specific port on a specific switch.
///
/// This is the value the Host Tracking Service binds host identifiers to,
/// and the endpoint type used by link discovery.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchPort {
    /// The switch's datapath identifier.
    pub dpid: DatapathId,
    /// The port on that switch.
    pub port: PortNo,
}

impl SwitchPort {
    /// Creates a switch/port pair.
    pub const fn new(dpid: DatapathId, port: PortNo) -> Self {
        SwitchPort { dpid, port }
    }
}

impl fmt::Display for SwitchPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.dpid, self.port)
    }
}

impl fmt::Debug for SwitchPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SwitchPort({self})")
    }
}

/// A simulation-level host identifier (not visible on the wire).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl HostId {
    /// Creates a host identifier.
    pub const fn new(raw: u32) -> Self {
        HostId(raw)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostId({self})")
    }
}

/// A simulation node: a switch, a host, or the controller.
///
/// Used by the discrete-event engine to address event handlers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeId {
    /// An OpenFlow switch, by datapath id.
    Switch(DatapathId),
    /// An end host.
    Host(HostId),
    /// The (single, logically centralized) SDN controller.
    Controller,
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Switch(dpid) => write!(f, "sw{dpid}"),
            NodeId::Host(h) => write!(f, "{h}"),
            NodeId::Controller => write!(f, "controller"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpid_bytes_round_trip() {
        let dpid = DatapathId::new(0x0102_0304_0506_0708);
        assert_eq!(DatapathId::from_slice(&dpid.to_bytes()), Some(dpid));
        assert!(DatapathId::from_slice(&[0; 7]).is_none());
    }

    #[test]
    fn dpid_displays_as_hex() {
        assert_eq!(DatapathId::new(0x2a).to_string(), "0x2a");
    }

    #[test]
    fn reserved_ports_are_not_physical() {
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(!PortNo::FLOOD.is_physical());
        assert!(PortNo::new(1).is_physical());
        assert!(PortNo::new(0xfeff).is_physical());
    }

    #[test]
    fn port_display_names_reserved() {
        assert_eq!(PortNo::FLOOD.to_string(), "FLOOD");
        assert_eq!(PortNo::new(3).to_string(), "3");
    }

    #[test]
    fn switch_port_ordering_is_by_dpid_then_port() {
        let a = SwitchPort::new(DatapathId::new(1), PortNo::new(9));
        let b = SwitchPort::new(DatapathId::new(2), PortNo::new(1));
        assert!(a < b);
    }

    #[test]
    fn node_ids_display() {
        assert_eq!(NodeId::Switch(DatapathId::new(1)).to_string(), "sw0x1");
        assert_eq!(NodeId::Host(HostId::new(3)).to_string(), "h3");
        assert_eq!(NodeId::Controller.to_string(), "controller");
    }
}
