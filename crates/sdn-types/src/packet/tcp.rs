//! Minimal TCP segments — enough for SYN scans, handshakes, and idle scans.
//!
//! The paper's Port Probing attack evaluates TCP SYN scans and TCP idle
//! scans as liveness probes (Table I). Those techniques only require the
//! header fields modeled here: ports, sequence/acknowledgment numbers, the
//! flag byte, and the IP identification side channel (carried by the
//! simulator's host stack, see `netsim`).

use crate::buf::BytesMut;

use crate::ParseError;

/// TCP control flags (subset: FIN, SYN, RST, PSH, ACK).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct TcpFlags {
    /// No more data from sender.
    pub fin: bool,
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
}

impl TcpFlags {
    /// Only SYN set — the first packet of a handshake or a SYN scan probe.
    pub const SYN: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: false,
    };

    /// SYN+ACK — the listener's handshake response for an open port.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: true,
    };

    /// RST — the response for a closed port (and the idle-scan side effect).
    pub const RST: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: true,
        psh: false,
        ack: false,
    };

    /// RST+ACK — reset in response to an unexpected SYN/ACK.
    pub const RST_ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: true,
        psh: false,
        ack: true,
    };

    /// Plain ACK.
    pub const ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
    };

    fn to_byte(self) -> u8 {
        u8::from(self.fin)
            | u8::from(self.syn) << 1
            | u8::from(self.rst) << 2
            | u8::from(self.psh) << 3
            | u8::from(self.ack) << 4
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment with a fixed 20-byte header (no options).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Window size.
    pub window: u16,
    /// Payload data.
    pub data: Vec<u8>,
}

const TCP_HEADER_LEN: usize = 20;

impl TcpSegment {
    /// Builds a SYN probe to `dst_port` from `src_port` with initial
    /// sequence number `seq`.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65_535,
            data: Vec::new(),
        }
    }

    /// Builds the SYN-ACK answering `syn` with our initial sequence `seq`.
    pub fn syn_ack_to(syn: &TcpSegment, seq: u32) -> Self {
        TcpSegment {
            src_port: syn.dst_port,
            dst_port: syn.src_port,
            seq,
            ack: syn.seq.wrapping_add(1),
            flags: TcpFlags::SYN_ACK,
            window: 65_535,
            data: Vec::new(),
        }
    }

    /// Builds the RST answering `segment` (closed port / teardown).
    pub fn rst_to(segment: &TcpSegment) -> Self {
        TcpSegment {
            src_port: segment.dst_port,
            dst_port: segment.src_port,
            seq: segment.ack,
            ack: segment.seq.wrapping_add(1),
            flags: TcpFlags::RST_ACK,
            window: 0,
            data: Vec::new(),
        }
    }

    /// Appends the wire encoding to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(5 << 4); // data offset = 5 words
        buf.put_u8(self.flags.to_byte());
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum: requires pseudo-header; simulation links are reliable
        buf.put_u16(0); // urgent pointer
        buf.put_slice(&self.data);
    }

    /// Parses from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < TCP_HEADER_LEN {
            return Err(ParseError::truncated(
                "TcpSegment",
                TCP_HEADER_LEN,
                bytes.len(),
            ));
        }
        let offset = usize::from(bytes[12] >> 4) * 4;
        if offset != TCP_HEADER_LEN {
            return Err(ParseError::bad_field("TcpSegment", "options not supported"));
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            ack: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            flags: TcpFlags::from_byte(bytes[13]),
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
            data: bytes[TCP_HEADER_LEN..].to_vec(),
        })
    }

    /// Returns `true` if this is a bare SYN (a scan probe or handshake open).
    pub fn is_syn(&self) -> bool {
        self.flags.syn && !self.flags.ack
    }

    /// Returns `true` if this is a SYN-ACK.
    pub fn is_syn_ack(&self) -> bool {
        self.flags.syn && self.flags.ack
    }

    /// Returns `true` if RST is set.
    pub fn is_rst(&self) -> bool {
        self.flags.rst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_round_trips() {
        let seg = TcpSegment::syn(40000, 80, 0x01020304);
        let mut buf = BytesMut::new();
        seg.encode_into(&mut buf);
        assert_eq!(buf.len(), TCP_HEADER_LEN);
        let parsed = TcpSegment::parse(&buf).unwrap();
        assert_eq!(parsed, seg);
        assert!(parsed.is_syn());
        assert!(!parsed.is_syn_ack());
    }

    #[test]
    fn handshake_fields_are_consistent() {
        let syn = TcpSegment::syn(40000, 80, 100);
        let syn_ack = TcpSegment::syn_ack_to(&syn, 9000);
        assert_eq!(syn_ack.ack, 101);
        assert_eq!(syn_ack.src_port, 80);
        assert_eq!(syn_ack.dst_port, 40000);
        assert!(syn_ack.is_syn_ack());

        let rst = TcpSegment::rst_to(&syn);
        assert!(rst.is_rst());
        assert_eq!(rst.dst_port, 40000);
    }

    #[test]
    fn flags_round_trip_all_combinations() {
        for b in 0u8..32 {
            let flags = TcpFlags::from_byte(b);
            assert_eq!(flags.to_byte(), b);
        }
    }

    #[test]
    fn payload_survives() {
        let seg = TcpSegment {
            data: vec![1, 2, 3, 4],
            ..TcpSegment::syn(1, 2, 3)
        };
        let mut buf = BytesMut::new();
        seg.encode_into(&mut buf);
        assert_eq!(TcpSegment::parse(&buf).unwrap().data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn truncated_rejected() {
        assert!(TcpSegment::parse(&[0; 10]).is_err());
    }
}
