//! IPv4 (RFC 791) with ICMP / TCP / UDP transport payloads.

use crate::buf::BytesMut;

use crate::{IpAddr, ParseError};

use super::{internet_checksum, IcmpPacket, TcpSegment, UdpDatagram};

/// An IP protocol number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IpProtocol(pub u8);

impl IpProtocol {
    /// ICMP (1).
    pub const ICMP: IpProtocol = IpProtocol(1);
    /// TCP (6).
    pub const TCP: IpProtocol = IpProtocol(6);
    /// UDP (17).
    pub const UDP: IpProtocol = IpProtocol(17);
}

/// The transport payload of an IPv4 packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Transport {
    /// An ICMP message.
    Icmp(IcmpPacket),
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// An unrecognized protocol carried opaquely.
    Raw {
        /// The IP protocol number.
        protocol: u8,
        /// The raw payload bytes.
        data: Vec<u8>,
    },
}

impl Transport {
    /// Returns the protocol number for this payload.
    pub fn protocol(&self) -> IpProtocol {
        match self {
            Transport::Icmp(_) => IpProtocol::ICMP,
            Transport::Tcp(_) => IpProtocol::TCP,
            Transport::Udp(_) => IpProtocol::UDP,
            Transport::Raw { protocol, .. } => IpProtocol(*protocol),
        }
    }
}

/// An IPv4 packet with a fixed 20-byte header (no options).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Time to live.
    pub ttl: u8,
    /// IP identification field. Hosts that increment this per packet expose
    /// the side channel TCP idle scans exploit (§IV-B1).
    pub ident: u16,
    /// Transport payload.
    pub transport: Transport,
}

const IPV4_HEADER_LEN: usize = 20;

impl Ipv4Packet {
    /// Creates a packet with the default TTL of 64.
    pub fn new(src: IpAddr, dst: IpAddr, transport: Transport) -> Self {
        Ipv4Packet {
            src,
            dst,
            ttl: 64,
            ident: 0,
            transport,
        }
    }

    /// Sets the IP identification field.
    pub fn with_ident(mut self, ident: u16) -> Self {
        self.ident = ident;
        self
    }

    /// Appends the wire encoding (header + payload) to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        let mut body = BytesMut::new();
        match &self.transport {
            Transport::Icmp(icmp) => icmp.encode_into(&mut body),
            Transport::Tcp(tcp) => tcp.encode_into(&mut body),
            Transport::Udp(udp) => udp.encode_into(&mut body),
            Transport::Raw { data, .. } => body.put_slice(data),
        }

        let total_len = (IPV4_HEADER_LEN + body.len()) as u16;
        let mut header = [0u8; IPV4_HEADER_LEN];
        header[0] = 0x45; // version 4, IHL 5
        header[2..4].copy_from_slice(&total_len.to_be_bytes());
        header[4..6].copy_from_slice(&self.ident.to_be_bytes());
        header[8] = self.ttl;
        header[9] = self.transport.protocol().0;
        header[12..16].copy_from_slice(&self.src.octets());
        header[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&header);
        header[10..12].copy_from_slice(&csum.to_be_bytes());

        buf.put_slice(&header);
        buf.put_slice(&body);
    }

    /// Parses from wire bytes, verifying the header checksum.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < IPV4_HEADER_LEN {
            return Err(ParseError::truncated(
                "Ipv4Packet",
                IPV4_HEADER_LEN,
                bytes.len(),
            ));
        }
        if bytes[0] >> 4 != 4 {
            return Err(ParseError::bad_field("Ipv4Packet", "version is not 4"));
        }
        let ihl = usize::from(bytes[0] & 0x0f) * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(ParseError::bad_field(
                "Ipv4Packet",
                "options are not supported",
            ));
        }
        if internet_checksum(&bytes[..IPV4_HEADER_LEN]) != 0 {
            return Err(ParseError::bad_field("Ipv4Packet", "bad header checksum"));
        }
        let total_len = usize::from(u16::from_be_bytes([bytes[2], bytes[3]]));
        if total_len > bytes.len() || total_len < IPV4_HEADER_LEN {
            return Err(ParseError::bad_field("Ipv4Packet", "bad total length"));
        }
        let ident = u16::from_be_bytes([bytes[4], bytes[5]]);
        let ttl = bytes[8];
        let protocol = bytes[9];
        let src = super::ip_at(bytes, 12);
        let dst = super::ip_at(bytes, 16);
        let body = &bytes[IPV4_HEADER_LEN..total_len];
        let transport = match IpProtocol(protocol) {
            IpProtocol::ICMP => Transport::Icmp(IcmpPacket::parse(body)?),
            IpProtocol::TCP => Transport::Tcp(TcpSegment::parse(body)?),
            IpProtocol::UDP => Transport::Udp(UdpDatagram::parse(body)?),
            _ => Transport::Raw {
                protocol,
                data: body.to_vec(),
            },
        };
        Ok(Ipv4Packet {
            src,
            dst,
            ttl,
            ident,
            transport,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::IcmpType;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 0, 2),
            Transport::Icmp(IcmpPacket::echo_request(7, 1, vec![1, 2, 3])),
        )
    }

    #[test]
    fn round_trips() {
        let pkt = sample();
        let mut buf = BytesMut::new();
        pkt.encode_into(&mut buf);
        assert_eq!(Ipv4Packet::parse(&buf).unwrap(), pkt);
    }

    #[test]
    fn detects_corrupted_header() {
        let pkt = sample();
        let mut buf = BytesMut::new();
        pkt.encode_into(&mut buf);
        let mut raw = buf.to_vec();
        raw[15] ^= 0xff; // flip src address byte -> checksum mismatch
        assert!(matches!(
            Ipv4Packet::parse(&raw),
            Err(ParseError::BadField { detail, .. }) if detail.contains("checksum")
        ));
    }

    #[test]
    fn raw_transport_round_trips() {
        let pkt = Ipv4Packet::new(
            IpAddr::new(1, 2, 3, 4),
            IpAddr::new(5, 6, 7, 8),
            Transport::Raw {
                protocol: 0x2f,
                data: vec![9, 9, 9],
            },
        );
        let mut buf = BytesMut::new();
        pkt.encode_into(&mut buf);
        let parsed = Ipv4Packet::parse(&buf).unwrap();
        assert_eq!(parsed, pkt);
        assert_eq!(parsed.transport.protocol(), IpProtocol(0x2f));
    }

    #[test]
    fn icmp_reply_type_survives() {
        let pkt = Ipv4Packet::new(
            IpAddr::new(10, 0, 0, 2),
            IpAddr::new(10, 0, 0, 1),
            Transport::Icmp(IcmpPacket::echo_reply(7, 1, vec![])),
        );
        let mut buf = BytesMut::new();
        pkt.encode_into(&mut buf);
        let parsed = Ipv4Packet::parse(&buf).unwrap();
        match parsed.transport {
            Transport::Icmp(icmp) => assert_eq!(icmp.icmp_type, IcmpType::EchoReply),
            other => panic!("expected ICMP, got {other:?}"),
        }
    }

    #[test]
    fn rejects_version_6() {
        let pkt = sample();
        let mut buf = BytesMut::new();
        pkt.encode_into(&mut buf);
        let mut raw = buf.to_vec();
        raw[0] = 0x65;
        assert!(Ipv4Packet::parse(&raw).is_err());
    }
}
