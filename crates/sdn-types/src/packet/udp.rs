//! Minimal UDP datagrams.

use crate::buf::BytesMut;

use crate::ParseError;

/// A UDP datagram (RFC 768).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload data.
    pub data: Vec<u8>,
}

const UDP_HEADER_LEN: usize = 8;

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, data: Vec<u8>) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            data,
        }
    }

    /// Appends the wire encoding to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16((UDP_HEADER_LEN + self.data.len()) as u16);
        buf.put_u16(0); // checksum optional in IPv4
        buf.put_slice(&self.data);
    }

    /// Parses from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < UDP_HEADER_LEN {
            return Err(ParseError::truncated(
                "UdpDatagram",
                UDP_HEADER_LEN,
                bytes.len(),
            ));
        }
        let length = usize::from(u16::from_be_bytes([bytes[4], bytes[5]]));
        if length < UDP_HEADER_LEN || length > bytes.len() {
            return Err(ParseError::bad_field("UdpDatagram", "bad length"));
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            data: bytes[UDP_HEADER_LEN..length].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let dgram = UdpDatagram::new(53, 33000, vec![1, 2, 3]);
        let mut buf = BytesMut::new();
        dgram.encode_into(&mut buf);
        assert_eq!(UdpDatagram::parse(&buf).unwrap(), dgram);
    }

    #[test]
    fn empty_payload_round_trips() {
        let dgram = UdpDatagram::new(1, 2, vec![]);
        let mut buf = BytesMut::new();
        dgram.encode_into(&mut buf);
        assert_eq!(UdpDatagram::parse(&buf).unwrap(), dgram);
    }

    #[test]
    fn bad_length_rejected() {
        let dgram = UdpDatagram::new(1, 2, vec![1]);
        let mut buf = BytesMut::new();
        dgram.encode_into(&mut buf);
        let mut raw = buf.to_vec();
        raw[5] = 200; // claims more bytes than present
        assert!(UdpDatagram::parse(&raw).is_err());
    }
}
