//! LLDP (IEEE 802.1AB) packets with the TLV extensions used by link
//! discovery and by the paper's defenses.
//!
//! A controller-emitted discovery LLDP packet carries:
//!
//! * **Chassis ID** (type 1) and **Port ID** (type 2) identifying the switch
//!   port the packet was sent out of;
//! * **TTL** (type 3);
//! * an org-specific **DPID TLV** carrying the full 64-bit datapath id, as
//!   Floodlight does;
//! * optionally an org-specific **authentication TLV** (TopoGuard: an HMAC
//!   over the packet body so hosts cannot forge LLDP);
//! * optionally an org-specific **timestamp TLV** (TopoGuard+'s Link Latency
//!   Inspector: the controller's departure time, encrypted under a
//!   controller-owned key so hosts cannot rewrite it).
//!
//! Crucially, *relaying* a byte-exact LLDP packet keeps every TLV — including
//! the HMAC — valid. That is exactly why authenticated LLDP alone does not
//! stop link fabrication, and why the LLI falls back to timing.

use crate::buf::BytesMut;

use crate::crypto::{Hmac, Key, StreamCipher, Tag};
use crate::{DatapathId, ParseError, PortNo, SimTime};

/// The 24-bit organizationally-unique identifier used for this project's
/// org-specific TLVs.
pub const LLDP_ORG_TOPOMIRAGE: [u8; 3] = [0x00, 0x26, 0xe1];

/// Org-specific TLV subtypes under [`LLDP_ORG_TOPOMIRAGE`].
mod subtype {
    /// Full 64-bit DPID (Floodlight-style).
    pub const DPID: u8 = 0x01;
    /// HMAC authentication tag (TopoGuard authenticated LLDP).
    pub const AUTH: u8 = 0x02;
    /// Encrypted departure timestamp (TopoGuard+ LLI).
    pub const TIMESTAMP: u8 = 0x03;
}

/// LLDP TLV type codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlvType(pub u8);

impl TlvType {
    /// End of LLDPDU (type 0).
    pub const END: TlvType = TlvType(0);
    /// Chassis ID (type 1).
    pub const CHASSIS_ID: TlvType = TlvType(1);
    /// Port ID (type 2).
    pub const PORT_ID: TlvType = TlvType(2);
    /// Time to live (type 3).
    pub const TTL: TlvType = TlvType(3);
    /// Organizationally specific (type 127).
    pub const ORG_SPECIFIC: TlvType = TlvType(127);
}

/// A raw LLDP TLV: 7-bit type, 9-bit length, value bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LldpTlv {
    /// TLV type code (0..=127).
    pub tlv_type: TlvType,
    /// Value bytes (up to 511).
    pub value: Vec<u8>,
}

impl LldpTlv {
    /// Creates a TLV. Panics if the value exceeds the 9-bit length field.
    pub fn new(tlv_type: TlvType, value: Vec<u8>) -> Self {
        assert!(value.len() <= 511, "LLDP TLV value exceeds 511 bytes");
        LldpTlv { tlv_type, value }
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        debug_assert!(
            self.value.len() <= 511,
            "new() enforces the 9-bit length field"
        );
        let header = (u16::from(self.tlv_type.0) << 9) | (self.value.len() as u16);
        buf.put_u16(header);
        buf.put_slice(&self.value);
    }
}

/// An encrypted departure timestamp carried in an LLDP packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SealedTimestamp {
    /// The nonce the timestamp was sealed under.
    pub nonce: u64,
    /// The encrypted nanosecond timestamp.
    pub sealed: u64,
}

/// A parsed LLDP packet.
///
/// The discovery-relevant fields are first-class; any TLVs this crate does
/// not understand are preserved byte-exact in `extra_tlvs` so that relaying
/// (the attack primitive) is always faithful.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LldpPacket {
    /// The emitting switch's datapath id (from the DPID org TLV, falling
    /// back to the chassis ID TLV).
    pub dpid: DatapathId,
    /// The emitting switch port (from the Port ID TLV).
    pub port: PortNo,
    /// Time to live, in seconds.
    pub ttl_secs: u16,
    /// HMAC tag, if the controller signs its LLDP packets.
    pub auth_tag: Option<Tag>,
    /// Encrypted departure timestamp, if the LLI extension is enabled.
    pub timestamp: Option<SealedTimestamp>,
    /// Unrecognized TLVs, preserved in order.
    pub extra_tlvs: Vec<LldpTlv>,
}

impl LldpPacket {
    /// Creates a plain discovery packet for `dpid`/`port` with the default
    /// 120-second TTL.
    pub fn new(dpid: DatapathId, port: PortNo) -> Self {
        LldpPacket {
            dpid,
            port,
            ttl_secs: 120,
            auth_tag: None,
            timestamp: None,
            extra_tlvs: Vec::new(),
        }
    }

    /// Attaches an encrypted departure timestamp (TopoGuard+ LLI).
    ///
    /// The nonce is derived from `(dpid, port, departure)` so each probe
    /// seals under a fresh nonce.
    pub fn with_timestamp(mut self, key: Key, departure: SimTime) -> Self {
        let cipher = StreamCipher::new(key);
        let nonce = self
            .dpid
            .raw()
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(self.port.raw()))
            .wrapping_add(departure.as_nanos());
        self.timestamp = Some(SealedTimestamp {
            nonce,
            sealed: cipher.seal_u64(nonce, departure.as_nanos()),
        });
        self
    }

    /// Decrypts the departure timestamp, if present.
    pub fn open_timestamp(&self, key: Key) -> Option<SimTime> {
        let ts = self.timestamp?;
        let cipher = StreamCipher::new(key);
        Some(SimTime::from_nanos(cipher.open_u64(ts.nonce, ts.sealed)))
    }

    /// Signs the packet (TopoGuard authenticated LLDP). The tag covers the
    /// DPID, port, TTL, and timestamp TLV, so none can be modified — but a
    /// byte-exact relay of the whole packet remains valid.
    pub fn signed(mut self, key: Key) -> Self {
        let mac = Hmac::new(key);
        self.auth_tag = Some(mac.tag(&self.signing_bytes()));
        self
    }

    /// Verifies the authentication tag. Returns `false` if the packet is
    /// unsigned or the tag does not match.
    pub fn verify(&self, key: Key) -> bool {
        match self.auth_tag {
            Some(tag) => Hmac::new(key).verify(&self.signing_bytes(), tag),
            None => false,
        }
    }

    fn signing_bytes(&self) -> Vec<u8> {
        let mut data = Vec::with_capacity(32);
        data.extend_from_slice(&self.dpid.to_bytes());
        data.extend_from_slice(&self.port.raw().to_be_bytes());
        data.extend_from_slice(&self.ttl_secs.to_be_bytes());
        if let Some(ts) = self.timestamp {
            data.extend_from_slice(&ts.nonce.to_be_bytes());
            data.extend_from_slice(&ts.sealed.to_be_bytes());
        }
        data
    }

    /// Appends the wire encoding to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        // Chassis ID, subtype 7 (locally assigned): ASCII hex of the DPID.
        let mut chassis = vec![7u8];
        chassis.extend_from_slice(format!("{:016x}", self.dpid.raw()).as_bytes());
        LldpTlv::new(TlvType::CHASSIS_ID, chassis).encode_into(buf);

        // Port ID, subtype 2 (port component): big-endian port number.
        let mut port = vec![2u8];
        port.extend_from_slice(&self.port.raw().to_be_bytes());
        LldpTlv::new(TlvType::PORT_ID, port).encode_into(buf);

        LldpTlv::new(TlvType::TTL, self.ttl_secs.to_be_bytes().to_vec()).encode_into(buf);

        // DPID org TLV.
        let mut dpid = LLDP_ORG_TOPOMIRAGE.to_vec();
        dpid.push(subtype::DPID);
        dpid.extend_from_slice(&self.dpid.to_bytes());
        LldpTlv::new(TlvType::ORG_SPECIFIC, dpid).encode_into(buf);

        if let Some(ts) = self.timestamp {
            let mut v = LLDP_ORG_TOPOMIRAGE.to_vec();
            v.push(subtype::TIMESTAMP);
            v.extend_from_slice(&ts.nonce.to_be_bytes());
            v.extend_from_slice(&ts.sealed.to_be_bytes());
            LldpTlv::new(TlvType::ORG_SPECIFIC, v).encode_into(buf);
        }

        if let Some(tag) = self.auth_tag {
            let mut v = LLDP_ORG_TOPOMIRAGE.to_vec();
            v.push(subtype::AUTH);
            v.extend_from_slice(&tag.to_be_bytes());
            LldpTlv::new(TlvType::ORG_SPECIFIC, v).encode_into(buf);
        }

        for tlv in &self.extra_tlvs {
            tlv.encode_into(buf);
        }

        LldpTlv::new(TlvType::END, Vec::new()).encode_into(buf);
    }

    /// Parses from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        let mut offset = 0usize;
        let mut chassis_dpid: Option<DatapathId> = None;
        let mut org_dpid: Option<DatapathId> = None;
        let mut port: Option<PortNo> = None;
        let mut ttl_secs: Option<u16> = None;
        let mut auth_tag = None;
        let mut timestamp = None;
        let mut extra_tlvs = Vec::new();
        let mut saw_end = false;

        while offset + 2 <= bytes.len() {
            let header = u16::from_be_bytes([bytes[offset], bytes[offset + 1]]);
            let tlv_type = TlvType((header >> 9) as u8);
            let len = usize::from(header & 0x1ff);
            offset += 2;
            if offset + len > bytes.len() {
                return Err(ParseError::truncated(
                    "LldpPacket",
                    offset + len,
                    bytes.len(),
                ));
            }
            let value = &bytes[offset..offset + len];
            offset += len;

            match tlv_type {
                TlvType::END => {
                    saw_end = true;
                    break;
                }
                TlvType::CHASSIS_ID => {
                    // Subtype 7 (locally assigned): ASCII hex DPID.
                    if let Some((7, hex)) = value.split_first() {
                        if let Ok(s) = std::str::from_utf8(hex) {
                            if let Ok(raw) = u64::from_str_radix(s, 16) {
                                chassis_dpid = Some(DatapathId::new(raw));
                            }
                        }
                    }
                }
                TlvType::PORT_ID => {
                    if let Some((2, rest)) = value.split_first() {
                        if rest.len() >= 2 {
                            port = Some(PortNo::new(u16::from_be_bytes([rest[0], rest[1]])));
                        }
                    }
                }
                TlvType::TTL => {
                    if value.len() >= 2 {
                        ttl_secs = Some(u16::from_be_bytes([value[0], value[1]]));
                    }
                }
                TlvType::ORG_SPECIFIC if value.len() >= 4 && value[..3] == LLDP_ORG_TOPOMIRAGE => {
                    let body = &value[4..];
                    match value[3] {
                        subtype::DPID => {
                            org_dpid = DatapathId::from_slice(body);
                        }
                        subtype::AUTH => {
                            if body.len() >= 8 {
                                auth_tag = Some(super::u64_be_at(body, 0));
                            }
                        }
                        subtype::TIMESTAMP => {
                            if body.len() >= 16 {
                                timestamp = Some(SealedTimestamp {
                                    nonce: super::u64_be_at(body, 0),
                                    sealed: super::u64_be_at(body, 8),
                                });
                            }
                        }
                        _ => extra_tlvs.push(LldpTlv::new(tlv_type, value.to_vec())),
                    }
                }
                _ => extra_tlvs.push(LldpTlv::new(tlv_type, value.to_vec())),
            }
        }

        if !saw_end {
            return Err(ParseError::malformed("LldpPacket", "missing End TLV"));
        }
        let dpid = org_dpid
            .or(chassis_dpid)
            .ok_or_else(|| ParseError::malformed("LldpPacket", "no chassis/DPID TLV"))?;
        let port = port.ok_or_else(|| ParseError::malformed("LldpPacket", "no Port ID TLV"))?;
        Ok(LldpPacket {
            dpid,
            port,
            ttl_secs: ttl_secs.unwrap_or(120),
            auth_tag,
            timestamp,
            extra_tlvs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(pkt: &LldpPacket) -> Vec<u8> {
        let mut buf = BytesMut::new();
        pkt.encode_into(&mut buf);
        buf.to_vec()
    }

    #[test]
    fn plain_packet_round_trips() {
        let pkt = LldpPacket::new(DatapathId::new(0x2a), PortNo::new(3));
        assert_eq!(LldpPacket::parse(&encode(&pkt)).unwrap(), pkt);
    }

    #[test]
    fn signed_packet_verifies_after_round_trip() {
        let key = Key::from_seed(1);
        let pkt = LldpPacket::new(DatapathId::new(7), PortNo::new(1)).signed(key);
        let parsed = LldpPacket::parse(&encode(&pkt)).unwrap();
        assert!(parsed.verify(key));
        assert!(!parsed.verify(Key::from_seed(2)));
    }

    #[test]
    fn unsigned_packet_fails_verification() {
        let pkt = LldpPacket::new(DatapathId::new(7), PortNo::new(1));
        assert!(!pkt.verify(Key::from_seed(1)));
    }

    #[test]
    fn forged_dpid_breaks_signature() {
        let key = Key::from_seed(1);
        let pkt = LldpPacket::new(DatapathId::new(7), PortNo::new(1)).signed(key);
        let mut forged = LldpPacket::parse(&encode(&pkt)).unwrap();
        forged.dpid = DatapathId::new(8);
        assert!(!forged.verify(key));
    }

    #[test]
    fn timestamp_seals_and_opens() {
        let key = Key::from_seed(9);
        let departure = SimTime::from_millis(1234);
        let pkt = LldpPacket::new(DatapathId::new(1), PortNo::new(2))
            .with_timestamp(key, departure)
            .signed(key);
        let parsed = LldpPacket::parse(&encode(&pkt)).unwrap();
        assert!(parsed.verify(key));
        assert_eq!(parsed.open_timestamp(key), Some(departure));
        // A host without the key sees only ciphertext.
        let sealed = parsed.timestamp.unwrap().sealed;
        assert_ne!(sealed, departure.as_nanos());
    }

    #[test]
    fn tampered_timestamp_breaks_signature() {
        let key = Key::from_seed(9);
        let pkt = LldpPacket::new(DatapathId::new(1), PortNo::new(2))
            .with_timestamp(key, SimTime::from_millis(100))
            .signed(key);
        let mut tampered = LldpPacket::parse(&encode(&pkt)).unwrap();
        let ts = tampered.timestamp.as_mut().unwrap();
        ts.sealed ^= 1;
        assert!(!tampered.verify(key));
    }

    #[test]
    fn relayed_bytes_remain_valid() {
        // The attack primitive: a byte-exact copy keeps both the signature
        // and the timestamp valid.
        let key = Key::from_seed(4);
        let pkt = LldpPacket::new(DatapathId::new(1), PortNo::new(2))
            .with_timestamp(key, SimTime::from_millis(5))
            .signed(key);
        let wire = encode(&pkt);
        let relayed = wire.clone();
        let parsed = LldpPacket::parse(&relayed).unwrap();
        assert!(parsed.verify(key));
    }

    #[test]
    fn unknown_tlvs_are_preserved() {
        let mut pkt = LldpPacket::new(DatapathId::new(1), PortNo::new(2));
        pkt.extra_tlvs
            .push(LldpTlv::new(TlvType(8), b"sysname".to_vec()));
        let parsed = LldpPacket::parse(&encode(&pkt)).unwrap();
        assert_eq!(parsed.extra_tlvs, pkt.extra_tlvs);
    }

    #[test]
    fn missing_end_tlv_rejected() {
        let pkt = LldpPacket::new(DatapathId::new(1), PortNo::new(2));
        let wire = encode(&pkt);
        // Strip the End TLV (2 bytes).
        assert!(LldpPacket::parse(&wire[..wire.len() - 2]).is_err());
    }

    #[test]
    fn chassis_id_fallback_when_no_org_dpid() {
        // Build a packet manually with only standard TLVs.
        let mut buf = BytesMut::new();
        let mut chassis = vec![7u8];
        chassis.extend_from_slice(format!("{:016x}", 0x99).as_bytes());
        LldpTlv::new(TlvType::CHASSIS_ID, chassis).encode_into(&mut buf);
        let mut port = vec![2u8];
        port.extend_from_slice(&5u16.to_be_bytes());
        LldpTlv::new(TlvType::PORT_ID, port).encode_into(&mut buf);
        LldpTlv::new(TlvType::TTL, 120u16.to_be_bytes().to_vec()).encode_into(&mut buf);
        LldpTlv::new(TlvType::END, vec![]).encode_into(&mut buf);
        let parsed = LldpPacket::parse(&buf).unwrap();
        assert_eq!(parsed.dpid, DatapathId::new(0x99));
        assert_eq!(parsed.port, PortNo::new(5));
    }
}
