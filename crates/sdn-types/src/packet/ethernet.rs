//! Ethernet II framing.

use crate::buf::{Bytes, BytesMut};

use crate::{MacAddr, ParseError};

use super::{ArpPacket, Ipv4Packet, LldpPacket};

/// An EtherType value identifying the payload protocol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4 (`0x0800`).
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP (`0x0806`).
    pub const ARP: EtherType = EtherType(0x0806);
    /// LLDP (`0x88cc`).
    pub const LLDP: EtherType = EtherType(0x88cc);
    /// A locally-assigned experimental EtherType used for opaque payloads.
    pub const EXPERIMENTAL: EtherType = EtherType(0x88b5);
}

/// The payload of an Ethernet frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Payload {
    /// An ARP packet.
    Arp(ArpPacket),
    /// An IPv4 packet.
    Ipv4(Ipv4Packet),
    /// An LLDP discovery packet.
    Lldp(LldpPacket),
    /// An opaque payload under an unrecognized EtherType.
    Opaque {
        /// The EtherType of the unrecognized payload.
        ethertype: u16,
        /// The raw payload bytes.
        data: Vec<u8>,
    },
}

impl Payload {
    /// Returns the EtherType this payload is carried under.
    pub fn ethertype(&self) -> EtherType {
        match self {
            Payload::Arp(_) => EtherType::ARP,
            Payload::Ipv4(_) => EtherType::IPV4,
            Payload::Lldp(_) => EtherType::LLDP,
            Payload::Opaque { ethertype, .. } => EtherType(*ethertype),
        }
    }
}

/// An Ethernet II frame: 6-byte destination, 6-byte source, 2-byte
/// EtherType, payload.
///
/// Frames are the unit of transmission on every dataplane link and
/// out-of-band channel in the simulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EthernetFrame {
    /// Source MAC address.
    pub src: MacAddr,
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Typed payload.
    pub payload: Payload,
}

/// Minimum encoded size of a frame header.
pub(crate) const ETH_HEADER_LEN: usize = 14;

impl EthernetFrame {
    /// Creates a frame.
    pub fn new(src: MacAddr, dst: MacAddr, payload: Payload) -> Self {
        EthernetFrame { src, dst, payload }
    }

    /// Returns the payload's EtherType.
    pub fn ethertype(&self) -> EtherType {
        self.payload.ethertype()
    }

    /// Returns `true` if this frame carries LLDP.
    pub fn is_lldp(&self) -> bool {
        matches!(self.payload, Payload::Lldp(_))
    }

    /// Returns the LLDP payload if present.
    pub fn lldp(&self) -> Option<&LldpPacket> {
        match &self.payload {
            Payload::Lldp(lldp) => Some(lldp),
            _ => None,
        }
    }

    /// Returns the ARP payload if present.
    pub fn arp(&self) -> Option<&ArpPacket> {
        match &self.payload {
            Payload::Arp(arp) => Some(arp),
            _ => None,
        }
    }

    /// Returns the IPv4 payload if present.
    pub fn ipv4(&self) -> Option<&Ipv4Packet> {
        match &self.payload {
            Payload::Ipv4(ip) => Some(ip),
            _ => None,
        }
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(&self.dst.octets());
        buf.put_slice(&self.src.octets());
        buf.put_u16(self.ethertype().0);
        match &self.payload {
            Payload::Arp(arp) => arp.encode_into(&mut buf),
            Payload::Ipv4(ip) => ip.encode_into(&mut buf),
            Payload::Lldp(lldp) => lldp.encode_into(&mut buf),
            Payload::Opaque { data, .. } => buf.put_slice(data),
        }
        buf.freeze()
    }

    /// The encoded length in bytes, used by the simulator's serialization
    /// delay model.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }

    /// Parses a frame from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < ETH_HEADER_LEN {
            return Err(ParseError::truncated(
                "EthernetFrame",
                ETH_HEADER_LEN,
                bytes.len(),
            ));
        }
        let dst = super::mac_at(bytes, 0);
        let src = super::mac_at(bytes, 6);
        let ethertype = u16::from_be_bytes([bytes[12], bytes[13]]);
        let body = &bytes[ETH_HEADER_LEN..];
        let payload = match EtherType(ethertype) {
            EtherType::ARP => Payload::Arp(ArpPacket::parse(body)?),
            EtherType::IPV4 => Payload::Ipv4(Ipv4Packet::parse(body)?),
            EtherType::LLDP => Payload::Lldp(LldpPacket::parse(body)?),
            _ => Payload::Opaque {
                ethertype,
                data: body.to_vec(),
            },
        };
        Ok(EthernetFrame { src, dst, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IpAddr;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([i; 6])
    }

    #[test]
    fn arp_frame_round_trips() {
        let frame = EthernetFrame::new(
            mac(1),
            MacAddr::BROADCAST,
            Payload::Arp(ArpPacket::request(
                mac(1),
                IpAddr::new(10, 0, 0, 1),
                IpAddr::new(10, 0, 0, 2),
            )),
        );
        let bytes = frame.encode();
        assert_eq!(EthernetFrame::parse(&bytes).unwrap(), frame);
    }

    #[test]
    fn opaque_frame_round_trips() {
        let frame = EthernetFrame::new(
            mac(1),
            mac(2),
            Payload::Opaque {
                ethertype: 0x1234,
                data: vec![1, 2, 3, 4, 5],
            },
        );
        let parsed = EthernetFrame::parse(&frame.encode()).unwrap();
        assert_eq!(parsed, frame);
        assert_eq!(parsed.ethertype(), EtherType(0x1234));
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let err = EthernetFrame::parse(&[0; 5]).unwrap_err();
        assert!(matches!(err, ParseError::Truncated { .. }));
    }

    #[test]
    fn accessors_select_payload() {
        let frame = EthernetFrame::new(
            mac(3),
            mac(4),
            Payload::Arp(ArpPacket::request(
                mac(3),
                IpAddr::new(10, 0, 0, 3),
                IpAddr::new(10, 0, 0, 4),
            )),
        );
        assert!(frame.arp().is_some());
        assert!(frame.ipv4().is_none());
        assert!(frame.lldp().is_none());
        assert!(!frame.is_lldp());
    }

    #[test]
    fn wire_len_matches_encoding() {
        let frame = EthernetFrame::new(
            mac(1),
            mac(2),
            Payload::Opaque {
                ethertype: 0x1234,
                data: vec![0; 100],
            },
        );
        assert_eq!(frame.wire_len(), ETH_HEADER_LEN + 100);
    }
}
