//! Byte-accurate packet model.
//!
//! The simulation moves [`EthernetFrame`]s between nodes. A frame carries a
//! typed [`Payload`] — ARP, IPv4 (with ICMP/TCP/UDP transport), LLDP, or an
//! opaque byte blob — and every layer encodes to and parses from big-endian
//! wire bytes. Defenses therefore only observe information a real controller
//! would observe, and attacks (e.g. LLDP relaying) operate on real buffers.

mod arp;
mod ethernet;
mod icmp;
mod ipv4;
mod lldp;
mod tcp;
mod udp;

pub use arp::{ArpOp, ArpPacket};
pub use ethernet::{EtherType, EthernetFrame, Payload};
pub use icmp::{IcmpPacket, IcmpType};
pub use ipv4::{IpProtocol, Ipv4Packet, Transport};
pub use lldp::{LldpPacket, LldpTlv, TlvType, LLDP_ORG_TOPOMIRAGE};
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;

/// Reads a MAC address at `off`. Callers have already length-checked the
/// buffer; an out-of-range read is a parser logic error (index panic),
/// not a recoverable condition — this keeps `.expect()` off parse paths.
pub(crate) fn mac_at(bytes: &[u8], off: usize) -> crate::MacAddr {
    debug_assert!(
        bytes.len() >= off + 6,
        "mac_at caller broke the length contract"
    );
    crate::MacAddr::from([
        bytes[off],
        bytes[off + 1],
        bytes[off + 2],
        bytes[off + 3],
        bytes[off + 4],
        bytes[off + 5],
    ])
}

/// Reads an IPv4 address at `off` (same contract as [`mac_at`]).
pub(crate) fn ip_at(bytes: &[u8], off: usize) -> crate::IpAddr {
    debug_assert!(
        bytes.len() >= off + 4,
        "ip_at caller broke the length contract"
    );
    crate::IpAddr::from([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// Reads a big-endian `u64` at `off` (same contract as [`mac_at`]).
pub(crate) fn u64_be_at(bytes: &[u8], off: usize) -> u64 {
    debug_assert!(
        bytes.len() >= off + 8,
        "u64_be_at caller broke the length contract"
    );
    u64::from_be_bytes([
        bytes[off],
        bytes[off + 1],
        bytes[off + 2],
        bytes[off + 3],
        bytes[off + 4],
        bytes[off + 5],
        bytes[off + 6],
        bytes[off + 7],
    ])
}

/// Computes the Internet checksum (RFC 1071) over `data`.
///
/// Used for the IPv4 header checksum and ICMP checksum.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_zeroes_is_all_ones() {
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xffff);
    }

    #[test]
    fn checksum_rfc1071_example() {
        // Example from RFC 1071 §3: words 0001 f203 f4f5 f6f7 -> sum ddf2,
        // checksum is its complement 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn checksum_handles_odd_length() {
        // Trailing byte is padded with zero.
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn checksum_validates_packet_with_embedded_checksum() {
        // A buffer whose checksum field is already correct sums to zero.
        let mut data = vec![0x45, 0x00, 0x00, 0x14, 0x00, 0x00];
        let csum = internet_checksum(&data);
        data.extend_from_slice(&csum.to_be_bytes());
        assert_eq!(internet_checksum(&data), 0);
    }
}
