//! ICMP echo (RFC 792) — the basis of ping-style liveness probes.

use crate::buf::BytesMut;

use crate::ParseError;

use super::internet_checksum;

/// ICMP message type (echo subset).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IcmpType {
    /// Echo reply (type 0).
    EchoReply,
    /// Echo request (type 8).
    EchoRequest,
    /// Destination unreachable (type 3); code retained.
    Unreachable(u8),
}

impl IcmpType {
    fn to_wire(self) -> (u8, u8) {
        match self {
            IcmpType::EchoReply => (0, 0),
            IcmpType::EchoRequest => (8, 0),
            IcmpType::Unreachable(code) => (3, code),
        }
    }

    fn from_wire(ty: u8, code: u8) -> Result<Self, ParseError> {
        match ty {
            0 => Ok(IcmpType::EchoReply),
            8 => Ok(IcmpType::EchoRequest),
            3 => Ok(IcmpType::Unreachable(code)),
            _ => Err(ParseError::bad_field("IcmpPacket", "unsupported type")),
        }
    }
}

/// An ICMP message with echo identifier/sequence fields.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IcmpPacket {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Echo identifier (used by probes to match replies to requests).
    pub identifier: u16,
    /// Echo sequence number.
    pub sequence: u16,
    /// Optional payload data.
    pub data: Vec<u8>,
}

const ICMP_HEADER_LEN: usize = 8;

impl IcmpPacket {
    /// Builds an echo request.
    pub fn echo_request(identifier: u16, sequence: u16, data: Vec<u8>) -> Self {
        IcmpPacket {
            icmp_type: IcmpType::EchoRequest,
            identifier,
            sequence,
            data,
        }
    }

    /// Builds an echo reply.
    pub fn echo_reply(identifier: u16, sequence: u16, data: Vec<u8>) -> Self {
        IcmpPacket {
            icmp_type: IcmpType::EchoReply,
            identifier,
            sequence,
            data,
        }
    }

    /// Builds the reply answering `request` (echoing id, seq, and data).
    pub fn reply_to(request: &IcmpPacket) -> Self {
        IcmpPacket::echo_reply(request.identifier, request.sequence, request.data.clone())
    }

    /// Appends the wire encoding to `buf`, computing the ICMP checksum.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        let (ty, code) = self.icmp_type.to_wire();
        let mut msg = BytesMut::with_capacity(ICMP_HEADER_LEN + self.data.len());
        msg.put_u8(ty);
        msg.put_u8(code);
        msg.put_u16(0); // checksum placeholder
        msg.put_u16(self.identifier);
        msg.put_u16(self.sequence);
        msg.put_slice(&self.data);
        let csum = internet_checksum(&msg);
        msg[2..4].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&msg);
    }

    /// Parses from wire bytes, verifying the checksum.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < ICMP_HEADER_LEN {
            return Err(ParseError::truncated(
                "IcmpPacket",
                ICMP_HEADER_LEN,
                bytes.len(),
            ));
        }
        if internet_checksum(bytes) != 0 {
            return Err(ParseError::bad_field("IcmpPacket", "bad checksum"));
        }
        let icmp_type = IcmpType::from_wire(bytes[0], bytes[1])?;
        Ok(IcmpPacket {
            icmp_type,
            identifier: u16::from_be_bytes([bytes[4], bytes[5]]),
            sequence: u16::from_be_bytes([bytes[6], bytes[7]]),
            data: bytes[ICMP_HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trips() {
        let req = IcmpPacket::echo_request(0x1234, 7, vec![0xde, 0xad]);
        let mut buf = BytesMut::new();
        req.encode_into(&mut buf);
        assert_eq!(IcmpPacket::parse(&buf).unwrap(), req);
    }

    #[test]
    fn reply_echoes_fields() {
        let req = IcmpPacket::echo_request(1, 2, vec![3]);
        let rep = IcmpPacket::reply_to(&req);
        assert_eq!(rep.icmp_type, IcmpType::EchoReply);
        assert_eq!(rep.identifier, 1);
        assert_eq!(rep.sequence, 2);
        assert_eq!(rep.data, vec![3]);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let req = IcmpPacket::echo_request(1, 2, vec![3, 4, 5]);
        let mut buf = BytesMut::new();
        req.encode_into(&mut buf);
        let mut raw = buf.to_vec();
        raw[9] ^= 0x01;
        assert!(IcmpPacket::parse(&raw).is_err());
    }

    #[test]
    fn unreachable_round_trips() {
        let pkt = IcmpPacket {
            icmp_type: IcmpType::Unreachable(1),
            identifier: 0,
            sequence: 0,
            data: vec![],
        };
        let mut buf = BytesMut::new();
        pkt.encode_into(&mut buf);
        assert_eq!(IcmpPacket::parse(&buf).unwrap(), pkt);
    }
}
