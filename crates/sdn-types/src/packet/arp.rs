//! ARP (RFC 826) for Ethernet/IPv4.

use crate::buf::BytesMut;

use crate::{IpAddr, MacAddr, ParseError};

/// ARP operation code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpOp {
    /// Who-has request (opcode 1).
    Request,
    /// Is-at reply (opcode 2).
    Reply,
}

impl ArpOp {
    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }

    fn from_u16(raw: u16) -> Result<Self, ParseError> {
        match raw {
            1 => Ok(ArpOp::Request),
            2 => Ok(ArpOp::Reply),
            _ => Err(ParseError::bad_field("ArpPacket", "unknown opcode")),
        }
    }
}

/// An ARP packet for IPv4 over Ethernet (fixed 28-byte body).
///
/// ARP is central to two parts of the paper: `arping`-based liveness probes
/// (Table I — the stealthiest practical probe) and MAC-address harvesting
/// before a host-location hijack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpPacket {
    /// Operation (request or reply).
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: IpAddr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: IpAddr,
}

const ARP_LEN: usize = 28;

impl ArpPacket {
    /// Builds a who-has request for `target_ip` from `sender`.
    pub fn request(sender_mac: MacAddr, sender_ip: IpAddr, target_ip: IpAddr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds the is-at reply answering `request`.
    pub fn reply_to(request: &ArpPacket, my_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Appends the 28-byte wire encoding to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16(1); // HTYPE: Ethernet
        buf.put_u16(0x0800); // PTYPE: IPv4
        buf.put_u8(6); // HLEN
        buf.put_u8(4); // PLEN
        buf.put_u16(self.op.to_u16());
        buf.put_slice(&self.sender_mac.octets());
        buf.put_slice(&self.sender_ip.octets());
        buf.put_slice(&self.target_mac.octets());
        buf.put_slice(&self.target_ip.octets());
    }

    /// Parses from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < ARP_LEN {
            return Err(ParseError::truncated("ArpPacket", ARP_LEN, bytes.len()));
        }
        let htype = u16::from_be_bytes([bytes[0], bytes[1]]);
        let ptype = u16::from_be_bytes([bytes[2], bytes[3]]);
        if htype != 1 || ptype != 0x0800 || bytes[4] != 6 || bytes[5] != 4 {
            return Err(ParseError::bad_field(
                "ArpPacket",
                "unsupported hardware/protocol type",
            ));
        }
        let op = ArpOp::from_u16(u16::from_be_bytes([bytes[6], bytes[7]]))?;
        Ok(ArpPacket {
            op,
            sender_mac: super::mac_at(bytes, 8),
            sender_ip: super::ip_at(bytes, 14),
            target_mac: super::mac_at(bytes, 18),
            target_ip: super::ip_at(bytes, 24),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_round_trip() {
        let req = ArpPacket::request(
            MacAddr::new([1; 6]),
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 0, 2),
        );
        let mut buf = BytesMut::new();
        req.encode_into(&mut buf);
        assert_eq!(buf.len(), ARP_LEN);
        assert_eq!(ArpPacket::parse(&buf).unwrap(), req);

        let rep = ArpPacket::reply_to(&req, MacAddr::new([2; 6]));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, req.target_ip);
        assert_eq!(rep.target_mac, req.sender_mac);
        assert_eq!(rep.target_ip, req.sender_ip);
    }

    #[test]
    fn rejects_bad_opcode() {
        let req = ArpPacket::request(
            MacAddr::new([1; 6]),
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 0, 2),
        );
        let mut buf = BytesMut::new();
        req.encode_into(&mut buf);
        let mut raw = buf.to_vec();
        raw[7] = 9;
        assert!(ArpPacket::parse(&raw).is_err());
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            ArpPacket::parse(&[0; 10]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let req = ArpPacket::request(
            MacAddr::new([1; 6]),
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 0, 2),
        );
        let mut buf = BytesMut::new();
        req.encode_into(&mut buf);
        let mut raw = buf.to_vec();
        raw[1] = 6; // HTYPE = IEEE 802
        assert!(ArpPacket::parse(&raw).is_err());
    }
}
