//! Resumable campaign checkpoints: finalized cells on disk, updated
//! atomically, validated before a single byte of them is trusted.
//!
//! A checkpoint holds the [`CellReport`]s a shard has finalized so far,
//! preceded by a header binding the file to one exact campaign: scenario
//! name, base seed, seed count, confidence, shard assignment, and a
//! fingerprint of the full grid. [`load`] refuses a checkpoint whose
//! header describes a *different* campaign (running `--resume` against
//! the wrong state is an error, not silent mis-aggregation), while a
//! *damaged* file degrades gracefully:
//!
//! * missing file, bad magic, or a header too short to parse → start
//!   clean (no cells resumed);
//! * a truncated or corrupt record tail → keep the complete prefix and
//!   re-run only the cells past it.
//!
//! Writes go through the same discipline as the `tm-lint` cache: encode
//! the whole file, write to a sibling `.tmp`, then `rename` into place.
//! On POSIX the rename is atomic, so a reader (or a crash) sees either
//! the old complete checkpoint or the new one — never a half-written
//! file. The [`Saver`] sink plugs this into the runner: every finalized
//! cell triggers a fresh atomic snapshot, so killing a campaign at any
//! instant loses at most the cells still in flight.
//!
//! Numbers are stored bit-exactly ([`f64::to_bits`] via [`crate::codec`]),
//! so a resumed report renders byte-identically to an uninterrupted run.

use std::fs;
use std::path::{Path, PathBuf};

use crate::aggregate::{CellReport, MetricAggregate};
use crate::codec::{put_f64, put_str, put_u32, put_u64, Cursor};
use crate::registry::{GridPoint, Scenario};
use crate::runner::{CampaignSpec, RunSink};
use crate::shard::Shard;

/// File magic + format version. Bump on any layout change.
const MAGIC: &[u8; 8] = b"TMCKPT01";

/// The identity block binding a checkpoint to one exact campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointHeader {
    /// Scenario name.
    pub scenario: String,
    /// The spec's base seed.
    pub base_seed: u64,
    /// Seeds per cell.
    pub seeds: usize,
    /// Confidence level (compared bit-exactly).
    pub confidence: f64,
    /// The shard that owns this checkpoint.
    pub shard: Shard,
    /// FNV-1a fingerprint of the full grid's cell labels — catches a
    /// scenario whose axes changed since the checkpoint was written.
    pub grid_fingerprint: u64,
    /// Total cells in the grid (across all shards).
    pub grid_cells: usize,
}

impl CheckpointHeader {
    /// The header for a spec over the given scenario.
    pub fn for_spec(scenario: &Scenario, spec: &CampaignSpec) -> CheckpointHeader {
        let grid = scenario.cells();
        CheckpointHeader {
            scenario: scenario.name.clone(),
            base_seed: spec.base_seed,
            seeds: spec.seeds,
            confidence: spec.confidence,
            shard: spec.shard,
            grid_fingerprint: grid_fingerprint(&grid),
            grid_cells: grid.len(),
        }
    }
}

/// FNV-1a over the grid's cell labels, in canonical cell order.
///
/// Any change to the axes — a value added, renamed, or reordered —
/// shifts cell indices, so the fingerprint must change with them; labels
/// capture exactly that.
pub fn grid_fingerprint(grid: &[GridPoint]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let prime: u64 = 0x0000_0100_0000_01b3;
    for point in grid {
        for byte in point.label().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(prime);
        }
        // Separator outside the UTF-8 range, so label boundaries can't
        // alias ("ab"+"c" vs "a"+"bc").
        hash ^= 0xFF;
        hash = hash.wrapping_mul(prime);
    }
    hash
}

fn encode_header(buf: &mut Vec<u8>, header: &CheckpointHeader) {
    buf.extend_from_slice(MAGIC);
    put_str(buf, &header.scenario);
    put_u64(buf, header.base_seed);
    put_u64(buf, header.seeds as u64);
    put_f64(buf, header.confidence);
    put_u32(buf, header.shard.index);
    put_u32(buf, header.shard.count);
    put_u64(buf, header.grid_fingerprint);
    put_u64(buf, header.grid_cells as u64);
}

fn decode_header(cursor: &mut Cursor<'_>) -> Option<CheckpointHeader> {
    if cursor.bytes(MAGIC.len())? != MAGIC {
        return None;
    }
    let scenario = cursor.str()?;
    let base_seed = cursor.u64()?;
    let seeds = cursor.len()?;
    let confidence = cursor.f64()?;
    let shard = Shard {
        index: cursor.u32()?,
        count: cursor.u32()?,
    };
    let grid_fingerprint = cursor.u64()?;
    let grid_cells = cursor.len()?;
    Some(CheckpointHeader {
        scenario,
        base_seed,
        seeds,
        confidence,
        shard,
        grid_fingerprint,
        grid_cells,
    })
}

fn encode_cell(buf: &mut Vec<u8>, cell: &CellReport) {
    let mut body = Vec::new();
    put_u64(&mut body, cell.index as u64);
    put_u32(&mut body, cell.point.coords.len() as u32);
    for (axis, value) in &cell.point.coords {
        put_str(&mut body, axis);
        put_str(&mut body, value);
    }
    put_u64(&mut body, cell.seeds as u64);
    put_u32(&mut body, cell.failures.len() as u32);
    for (seed, cause) in &cell.failures {
        put_u64(&mut body, *seed);
        put_str(&mut body, cause);
    }
    put_u32(&mut body, cell.metrics.len() as u32);
    for m in &cell.metrics {
        put_str(&mut body, &m.name);
        put_u64(&mut body, m.n as u64);
        put_f64(&mut body, m.mean);
        put_f64(&mut body, m.sd);
        put_f64(&mut body, m.min);
        put_f64(&mut body, m.max);
        put_f64(&mut body, m.ci_half);
        put_f64(&mut body, m.q50);
    }
    put_u64(buf, body.len() as u64);
    buf.extend_from_slice(&body);
}

fn decode_cell(cursor: &mut Cursor<'_>) -> Option<CellReport> {
    let index = cursor.len()?;
    let n_coords = cursor.u32()?;
    let mut coords = Vec::with_capacity(n_coords as usize);
    for _ in 0..n_coords {
        let axis = cursor.str()?;
        let value = cursor.str()?;
        coords.push((axis, value));
    }
    let seeds = cursor.len()?;
    let n_failures = cursor.u32()?;
    let mut failures = Vec::with_capacity(n_failures as usize);
    for _ in 0..n_failures {
        let seed = cursor.u64()?;
        let cause = cursor.str()?;
        failures.push((seed, cause));
    }
    let n_metrics = cursor.u32()?;
    let mut metrics = Vec::with_capacity(n_metrics as usize);
    for _ in 0..n_metrics {
        metrics.push(MetricAggregate {
            name: cursor.str()?,
            n: cursor.len()?,
            mean: cursor.f64()?,
            sd: cursor.f64()?,
            min: cursor.f64()?,
            max: cursor.f64()?,
            ci_half: cursor.f64()?,
            q50: cursor.f64()?,
        });
    }
    Some(CellReport {
        index,
        point: GridPoint { coords },
        seeds,
        failures,
        metrics,
    })
}

/// Writes a complete checkpoint atomically: encode, write a sibling
/// `<path>.tmp`, `rename` over `path`.
pub fn save(path: &Path, header: &CheckpointHeader, cells: &[CellReport]) -> Result<(), String> {
    let mut buf = Vec::new();
    encode_header(&mut buf, header);
    for cell in cells {
        encode_cell(&mut buf, cell);
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, &buf).map_err(|e| format!("checkpoint write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path).map_err(|e| {
        format!(
            "checkpoint rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        )
    })
}

/// Loads the resumable cells from a checkpoint, validating it against the
/// campaign described by `expect`.
///
/// Returns the complete-record prefix of the file. Degrades per the
/// module contract: no file / bad magic / short header → `Ok(empty)`
/// (clean restart); a parseable header that describes a *different*
/// campaign → `Err` (refuse to mix state); a damaged record tail → the
/// cells before it.
pub fn load(path: &Path, expect: &CheckpointHeader) -> Result<Vec<CellReport>, String> {
    let data = match fs::read(path) {
        Ok(data) => data,
        Err(_) => return Ok(Vec::new()),
    };
    let mut cursor = Cursor::new(&data);
    let header = match decode_header(&mut cursor) {
        Some(header) => header,
        None => return Ok(Vec::new()),
    };
    let header_matches = header.confidence.to_bits() == expect.confidence.to_bits()
        && CheckpointHeader {
            confidence: expect.confidence,
            ..header.clone()
        } == *expect;
    if !header_matches {
        return Err(format!(
            "checkpoint {} was written for campaign `{}` (base seed {:#x}, {} seeds, shard {}, \
             grid {:#018x}/{} cells); current spec differs — delete it or fix the flags",
            path.display(),
            header.scenario,
            header.base_seed,
            header.seeds,
            header.shard.label(),
            header.grid_fingerprint,
            header.grid_cells,
        ));
    }
    let mut cells = Vec::new();
    loop {
        if cursor.is_empty() {
            break;
        }
        let complete = (|| {
            let len = cursor.len()?;
            let body = cursor.bytes(len)?;
            let mut record = Cursor::new(body);
            let cell = decode_cell(&mut record)?;
            record.is_empty().then_some(cell)
        })();
        match complete {
            Some(cell) => cells.push(cell),
            // Truncated or corrupt tail: keep the complete prefix; the
            // runner re-executes everything past it.
            None => break,
        }
    }
    Ok(cells)
}

/// A [`RunSink`] that re-snapshots the checkpoint after every finalized
/// cell.
///
/// Seed it with the cells loaded at resume time so an interrupted →
/// resumed → interrupted chain never forgets earlier work. Snapshots are
/// whole-file atomic rewrites; cells are kept sorted by index so the file
/// is always in canonical order.
pub struct Saver {
    path: PathBuf,
    header: CheckpointHeader,
    cells: Vec<CellReport>,
}

impl Saver {
    /// A saver for `path`, pre-seeded with already-finalized cells.
    pub fn new(path: PathBuf, header: CheckpointHeader, resumed: Vec<CellReport>) -> Saver {
        Saver {
            path,
            header,
            cells: resumed,
        }
    }

    /// The cells the saver currently holds (resumed + finalized).
    pub fn cells(&self) -> &[CellReport] {
        &self.cells
    }
}

impl RunSink for Saver {
    fn on_cell(&mut self, cell: &CellReport) -> Result<(), String> {
        self.cells.push(cell.clone());
        self.cells.sort_by_key(|c| c.index);
        save(&self.path, &self.header, &self.cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Axis, Metrics, Registry};
    use crate::runner::{run_campaign, run_campaign_with, Resume};

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(Scenario::new(
            "ck",
            "checkpoint fixture",
            vec![Axis::new("v", &["1", "2", "3"])],
            |point, seed| {
                let v: f64 = point.get("v").and_then(|s| s.parse().ok()).unwrap_or(0.0);
                if point.get("v") == Some("3") && seed % 2 == 1 {
                    panic!("odd seed on v=3");
                }
                Metrics::new().with("m", v * (seed % 10) as f64)
            },
        ))
        .expect("register");
        r
    }

    fn spec() -> CampaignSpec {
        let mut s = CampaignSpec::new("ck", 0xAB);
        s.seeds = 4;
        s.quiet_panics = true;
        s
    }

    fn header(registry: &Registry, spec: &CampaignSpec) -> CheckpointHeader {
        CheckpointHeader::for_spec(registry.get("ck").expect("scenario"), spec)
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join("tm-campaign-ckpt-roundtrip");
        fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("ck.ckpt");
        let r = registry();
        let s = spec();
        let report = run_campaign(&r, &s).expect("campaign");
        let h = header(&r, &s);
        save(&path, &h, &report.cells).expect("save");
        let cells = load(&path, &h).expect("load");
        assert_eq!(cells, report.cells);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_garbage_file_is_a_clean_restart() {
        let dir = std::env::temp_dir().join("tm-campaign-ckpt-garbage");
        fs::create_dir_all(&dir).expect("tmpdir");
        let r = registry();
        let s = spec();
        let h = header(&r, &s);
        assert_eq!(load(&dir.join("absent.ckpt"), &h), Ok(Vec::new()));
        let garbage = dir.join("garbage.ckpt");
        fs::write(&garbage, b"not a checkpoint at all").expect("write");
        assert_eq!(load(&garbage, &h), Ok(Vec::new()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_header_is_an_error_not_a_restart() {
        let dir = std::env::temp_dir().join("tm-campaign-ckpt-mismatch");
        fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("ck.ckpt");
        let r = registry();
        let s = spec();
        let report = run_campaign(&r, &s).expect("campaign");
        save(&path, &header(&r, &s), &report.cells).expect("save");

        let mut other_seed = s.clone();
        other_seed.base_seed = 0xCD;
        assert!(load(&path, &header(&r, &other_seed)).is_err(), "base seed");
        let mut other_seeds = s.clone();
        other_seeds.seeds = 9;
        assert!(
            load(&path, &header(&r, &other_seeds)).is_err(),
            "seed count"
        );
        let mut other_shard = s.clone();
        other_shard.shard = Shard { index: 0, count: 2 };
        assert!(load(&path, &header(&r, &other_shard)).is_err(), "shard");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_keeps_the_complete_prefix() {
        let dir = std::env::temp_dir().join("tm-campaign-ckpt-trunc");
        fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("ck.ckpt");
        let r = registry();
        let s = spec();
        let h = header(&r, &s);
        let report = run_campaign(&r, &s).expect("campaign");
        assert_eq!(report.cells.len(), 3);
        save(&path, &h, &report.cells).expect("save");
        let full = fs::read(&path).expect("read");

        // Chop bytes off the end: the loader must always return a prefix
        // of the saved cells, never an error or a panic.
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).expect("truncate");
            let cells = load(&path, &h).expect("load truncated");
            assert!(cells.len() <= report.cells.len());
            assert_eq!(cells.as_slice(), &report.cells[..cells.len()], "cut={cut}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn saver_sink_checkpoints_every_cell_and_resumes() {
        let dir = std::env::temp_dir().join("tm-campaign-ckpt-saver");
        fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("ck.ckpt");
        let r = registry();
        let s = spec();
        let h = header(&r, &s);

        // First pass: run everything through the saver.
        let mut saver = Saver::new(path.clone(), h.clone(), Vec::new());
        let full = run_campaign_with(&r, &s, &Resume::none(), &mut saver).expect("campaign");
        assert_eq!(saver.cells(), full.cells.as_slice());

        // Simulate a crash that lost the last record: truncate the file,
        // resume, and require byte-identical output.
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
        let resumed_cells = load(&path, &h).expect("load");
        assert!(
            resumed_cells.len() < full.cells.len(),
            "truncation lost a cell"
        );
        let mut saver = Saver::new(path.clone(), h.clone(), resumed_cells.clone());
        let resumed = run_campaign_with(
            &r,
            &s,
            &Resume {
                cells: resumed_cells,
            },
            &mut saver,
        )
        .expect("resumed campaign");
        assert_eq!(resumed.render(), full.render());
        assert_eq!(resumed, full);
        // And the checkpoint on disk is whole again.
        assert_eq!(load(&path, &h).expect("reload"), full.cells);
        let _ = fs::remove_dir_all(&dir);
    }
}
