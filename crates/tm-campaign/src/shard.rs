//! Deterministic campaign sharding: split a grid across independent
//! invocations without changing a single derived seed.
//!
//! A shard is an `index/count` pair. Shard `i` of `n` owns every grid
//! cell whose canonical index satisfies `cell % n == i` — a pure function
//! of the cell index, so the partition is identical on every machine and
//! at every worker count. Crucially, sharding never re-numbers runs: run
//! `k = cell * seeds + seed_index` keeps its **global** canonical index,
//! and therefore its derived seed `stream_seed(base, k)`, whether the
//! campaign runs as one invocation or as `n`. That is why the union of
//! all shards' run streams, merged back into canonical `(cell, seed)`
//! order, aggregates byte-identically to an unsharded run (pinned by
//! `crates/tm-campaign/tests/campaign.rs`).
//!
//! Cells (not runs) are the sharding unit so that every cell's streaming
//! accumulator lives entirely inside one shard — no cross-shard Welford
//! merge is ever needed for a *cell*, which keeps the merged output
//! bit-identical to the sequential fold.

/// A shard assignment: this invocation owns cells `index mod count`.
///
/// `Shard::full()` (`0/1`) is the unsharded default; [`Shard::parse`]
/// accepts the CLI's `--shard i/n` syntax.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index, `< count`.
    pub index: u32,
    /// Total number of shards, `≥ 1`.
    pub count: u32,
}

impl Shard {
    /// The unsharded assignment `0/1`: owns every cell.
    pub fn full() -> Shard {
        Shard { index: 0, count: 1 }
    }

    /// Whether this is the unsharded `0/1` assignment.
    pub fn is_full(&self) -> bool {
        self.count <= 1
    }

    /// Parses `i/n` (e.g. `0/2`, `3/8`). Requires `n ≥ 1` and `i < n`.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard `{s}`: expected `index/count`, e.g. `0/2`"))?;
        let index: u32 = i
            .trim()
            .parse()
            .map_err(|_| format!("shard `{s}`: index `{i}` is not a number"))?;
        let count: u32 = n
            .trim()
            .parse()
            .map_err(|_| format!("shard `{s}`: count `{n}` is not a number"))?;
        if count == 0 {
            return Err(format!("shard `{s}`: count must be at least 1"));
        }
        if index >= count {
            return Err(format!(
                "shard `{s}`: index {index} out of range (0..{count})"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns the cell with the given canonical index.
    pub fn owns(&self, cell: usize) -> bool {
        match self.count {
            0 | 1 => true,
            count => {
                // `count` is non-zero by the match arm; restated for the
                // modulo below.
                debug_assert!(count >= 2);
                cell % count as usize == self.index as usize
            }
        }
    }

    /// The `i/n` display form, matching the `--shard` CLI syntax.
    pub fn label(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_and_rejects_invalid() {
        assert_eq!(Shard::parse("0/1"), Ok(Shard::full()));
        assert_eq!(Shard::parse("1/2"), Ok(Shard { index: 1, count: 2 }));
        assert_eq!(Shard::parse(" 3 / 8 "), Ok(Shard { index: 3, count: 8 }));
        assert!(Shard::parse("2/2").is_err(), "index must be < count");
        assert!(Shard::parse("0/0").is_err(), "count must be >= 1");
        assert!(Shard::parse("1").is_err(), "missing separator");
        assert!(Shard::parse("a/b").is_err(), "non-numeric");
        assert!(Shard::parse("-1/2").is_err(), "negative index");
    }

    #[test]
    fn full_shard_owns_everything() {
        let full = Shard::full();
        assert!(full.is_full());
        for cell in 0..10 {
            assert!(full.owns(cell));
        }
    }

    #[test]
    fn shards_partition_the_cells_exactly() {
        for count in 2u32..=5 {
            for cell in 0..23usize {
                let owners: Vec<u32> = (0..count)
                    .filter(|&index| Shard { index, count }.owns(cell))
                    .collect();
                assert_eq!(owners.len(), 1, "cell {cell} must have exactly one owner");
                assert_eq!(owners[0] as usize, cell % count as usize);
            }
        }
    }

    #[test]
    fn label_round_trips_through_parse() {
        for shard in [Shard::full(), Shard { index: 2, count: 7 }] {
            assert_eq!(Shard::parse(&shard.label()), Ok(shard));
        }
    }
}
