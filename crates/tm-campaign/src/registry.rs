//! The typed scenario registry: named scenarios, their parameter grids,
//! and the run functions that execute one `(grid-point, seed)` cell.
//!
//! The registry keeps the campaign engine generic: `tm-campaign` knows
//! nothing about SDN scenarios. Adapters (in `bench::campaign`) register
//! closures that translate a [`GridPoint`] into concrete scenario structs
//! (`tm_core::linkfab::LinkFabScenario`, …) and reduce the outcome to a
//! flat, insertion-ordered list of named metrics.

use std::sync::Arc;

/// One named parameter axis and its value labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Axis {
    /// Axis name (e.g. `stack`).
    pub name: String,
    /// The values swept, in grid order (e.g. defense-stack names).
    pub values: Vec<String>,
}

impl Axis {
    /// Convenience constructor from string slices.
    pub fn new(name: &str, values: &[&str]) -> Axis {
        Axis {
            name: name.to_string(),
            values: values.iter().map(|v| v.to_string()).collect(),
        }
    }
}

/// One point of a scenario's parameter grid: a `(axis, value)` pair per
/// axis, in axis order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridPoint {
    /// The coordinates, one per axis.
    pub coords: Vec<(String, String)>,
}

impl GridPoint {
    /// The value of the named axis, if present.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.coords
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
    }

    /// A stable display label: `axis=value` pairs joined by spaces, or
    /// `(default)` for a zero-axis scenario.
    pub fn label(&self) -> String {
        if self.coords.is_empty() {
            return "(default)".to_string();
        }
        self.coords
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The flat, insertion-ordered metric record one run produces.
///
/// Insertion order is preserved end-to-end (aggregation, tables, JSON),
/// so adapters control how their metrics read in reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    entries: Vec<(String, f64)>,
}

impl Metrics {
    /// An empty record.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Appends a metric. Boolean outcomes are recorded as 0.0/1.0 so
    /// their mean across seeds reads as a rate.
    pub fn push(&mut self, name: &str, value: f64) {
        self.entries.push((name.to_string(), value));
    }

    /// Builder-style [`Metrics::push`].
    pub fn with(mut self, name: &str, value: f64) -> Metrics {
        self.push(name, value);
        self
    }

    /// The recorded `(name, value)` pairs in insertion order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// The value of the named metric, if recorded.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The run function type: executes one `(grid-point, seed)` cell.
///
/// Must be a *pure function* of its arguments (the determinism contract;
/// see the crate docs) and must run fully single-threaded. It is invoked
/// from worker threads, hence `Send + Sync`.
pub type RunFn = Arc<dyn Fn(&GridPoint, u64) -> Metrics + Send + Sync>;

/// A registered scenario: name, parameter grid, and run function.
#[derive(Clone)]
pub struct Scenario {
    /// Registry key (e.g. `linkfab-fig1`).
    pub name: String,
    /// One-line description for listings.
    pub description: String,
    /// The parameter axes; the grid is their cartesian product. May be
    /// empty (a single-cell scenario).
    pub axes: Vec<Axis>,
    /// Executes one cell.
    pub run: RunFn,
}

impl Scenario {
    /// Constructs a scenario from a plain closure.
    pub fn new(
        name: &str,
        description: &str,
        axes: Vec<Axis>,
        run: impl Fn(&GridPoint, u64) -> Metrics + Send + Sync + 'static,
    ) -> Scenario {
        Scenario {
            name: name.to_string(),
            description: description.to_string(),
            axes,
            run: Arc::new(run),
        }
    }

    /// Enumerates the full grid in canonical order: the cartesian product
    /// of the axes with the **last axis varying fastest** (row-major).
    /// This order, not scheduling, defines result placement.
    pub fn cells(&self) -> Vec<GridPoint> {
        grid_of(&self.axes)
    }
}

/// Enumerates the canonical grid for a standalone axis list — the same
/// row-major order as [`Scenario::cells`].
///
/// This is what makes the binary run-log self-describing: a replay
/// reconstructs the grid from the axes stored in the log header, without
/// the scenario registry (or its run functions) in the loop.
pub fn grid_of(axes: &[Axis]) -> Vec<GridPoint> {
    let mut points = vec![GridPoint { coords: Vec::new() }];
    for axis in axes {
        let mut next = Vec::with_capacity(points.len() * axis.values.len());
        for point in &points {
            for value in &axis.values {
                let mut coords = point.coords.clone();
                coords.push((axis.name.clone(), value.clone()));
                next.push(GridPoint { coords });
            }
        }
        points = next;
    }
    points
}

/// The scenario registry, in registration order.
#[derive(Clone, Default)]
pub struct Registry {
    scenarios: Vec<Scenario>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a scenario. Duplicate names are rejected so lookups stay
    /// unambiguous.
    pub fn register(&mut self, scenario: Scenario) -> Result<(), String> {
        if self.get(&scenario.name).is_some() {
            return Err(format!("scenario `{}` already registered", scenario.name));
        }
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// All scenarios in registration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_axis_scenario() -> Scenario {
        Scenario::new(
            "t",
            "test",
            vec![
                Axis::new("a", &["x", "y"]),
                Axis::new("b", &["0", "1", "2"]),
            ],
            |_, _| Metrics::new(),
        )
    }

    #[test]
    fn cells_enumerate_row_major() {
        let labels: Vec<String> = two_axis_scenario()
            .cells()
            .iter()
            .map(GridPoint::label)
            .collect();
        assert_eq!(
            labels,
            ["a=x b=0", "a=x b=1", "a=x b=2", "a=y b=0", "a=y b=1", "a=y b=2"]
        );
    }

    #[test]
    fn zero_axis_scenario_has_one_default_cell() {
        let s = Scenario::new("one", "single cell", Vec::new(), |_, _| Metrics::new());
        let cells = s.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].label(), "(default)");
    }

    #[test]
    fn grid_point_lookup() {
        let cells = two_axis_scenario().cells();
        assert_eq!(cells[4].get("a"), Some("y"));
        assert_eq!(cells[4].get("b"), Some("1"));
        assert_eq!(cells[4].get("c"), None);
    }

    #[test]
    fn metrics_preserve_insertion_order() {
        let m = Metrics::new().with("z", 1.0).with("a", 2.0);
        let names: Vec<&str> = m.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["z", "a"]);
        assert_eq!(m.get("a"), Some(2.0));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn registry_rejects_duplicates() {
        let mut r = Registry::new();
        r.register(two_axis_scenario()).expect("first registration");
        assert!(r.register(two_axis_scenario()).is_err());
        assert!(r.get("t").is_some());
        assert_eq!(r.scenarios().len(), 1);
    }
}
