//! Little-endian binary primitives shared by the campaign checkpoint and
//! the `bench::runlog` run-log format.
//!
//! Both on-disk formats follow the same discipline: a fixed magic +
//! version header, then **length-prefixed records** so a reader can skip
//! or stop cleanly at a record boundary. Everything is little-endian and
//! hand-rolled (the hermetic-workspace rule: zero external dependencies).
//! Floats are stored as their IEEE-754 bit patterns ([`f64::to_bits`]),
//! never as decimal text, so a checkpointed aggregate re-renders
//! **byte-identically** after a round trip.
//!
//! The reader side is total: every accessor returns `Option`, a truncated
//! or corrupt buffer yields `None` instead of a panic, and callers turn
//! that into "drop the damaged tail" (checkpoint) or "stop at the last
//! complete record" (run-log).

/// Appends a `u32` in little-endian byte order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian byte order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a UTF-8 string as `u32 length + bytes`.
///
/// Lengths are clamped at `u32::MAX` bytes; campaign strings (scenario
/// names, axis labels, panic causes) are nowhere near that.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = u32::try_from(bytes.len()).unwrap_or(u32::MAX);
    put_u32(buf, len);
    buf.extend_from_slice(bytes.get(..len as usize).unwrap_or(bytes));
}

/// A bounds-checked reader over an encoded buffer.
///
/// Every accessor advances the cursor on success and returns `None` on
/// underrun or malformed data — no accessor can panic, which is what
/// makes truncated-file recovery a non-event for the callers.
#[derive(Clone, Copy, Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// Whether the cursor has consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let bytes = self.bytes(4)?;
        Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let bytes = self.bytes(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Some(u64::from_le_bytes(raw))
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Reads a `u32 length + bytes` UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that
    /// do not fit the platform (corrupt data on 32-bit targets).
    pub fn len(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::INFINITY);
        put_f64(&mut buf, 1.000000000000002);
        put_str(&mut buf, "topology=fat-tree-8 stack=topoguard-plus");
        put_str(&mut buf, "");

        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32(), Some(0xDEAD_BEEF));
        assert_eq!(c.u64(), Some(u64::MAX - 7));
        assert_eq!(c.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(c.f64(), Some(f64::INFINITY));
        assert_eq!(
            c.f64().map(f64::to_bits),
            Some(1.000000000000002f64.to_bits())
        );
        assert_eq!(
            c.str().as_deref(),
            Some("topology=fat-tree-8 stack=topoguard-plus")
        );
        assert_eq!(c.str().as_deref(), Some(""));
        assert!(c.is_empty());
    }

    #[test]
    fn truncation_yields_none_not_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        for cut in 0..buf.len() {
            let mut c = Cursor::new(&buf[..cut]);
            assert!(c.str().is_none(), "cut at {cut} must fail cleanly");
        }
        // A length prefix pointing past the end fails too.
        let mut lying = Vec::new();
        put_u32(&mut lying, 1000);
        lying.extend_from_slice(b"abc");
        assert!(Cursor::new(&lying).str().is_none());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Cursor::new(&buf).str().is_none());
    }
}
