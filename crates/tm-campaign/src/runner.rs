//! The streaming worker-pool executor: fans `(grid-cell, seed)` runs out
//! across a fixed-size thread pool and aggregates the results **as they
//! are merged back into canonical order**, holding one open cell at a
//! time instead of every run of the campaign.
//!
//! Threading model (the determinism argument, also in DESIGN.md):
//!
//! * The canonical run list — cell-major, seed-minor over the cells this
//!   invocation's [`Shard`] owns — is enumerated up front. Run `k`'s seed
//!   is [`tm_rand::stream_seed`]`(base, k)` where `k` is the run's
//!   **global** canonical index (`cell * seeds + seed_index`), a pure
//!   function of the spec that sharding never re-numbers.
//! * Workers pull pending-run indices from an atomic counter and send
//!   `(index, status)` over a channel. Which worker executes which run,
//!   and in what real-time order results arrive, is scheduler-dependent.
//! * The aggregator thread holds out-of-order arrivals in a reorder
//!   buffer and releases them strictly in canonical order — into the
//!   per-cell [`CellAccumulator`] and past the caller's [`RunSink`]. The
//!   emitted stream is identical for any worker count, so everything
//!   derived from it (aggregates, render, run-log bytes) is too.
//! * A cell finalizes the moment its last seed is emitted; its raw
//!   samples are dropped then. Peak memory is O(cells) finalized reports
//!   plus the reorder buffer, never O(runs) retained metrics.
//!
//! Each run body executes under [`crate::isolate`], so a panic in one
//! parameter point is recorded as [`RunStatus::Failed`] with its message
//! and the campaign continues.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::aggregate::{CampaignReport, CellAccumulator, CellReport};
use crate::registry::{Metrics, Registry};
use crate::shard::Shard;

/// A campaign specification: which scenario, how many seeds per cell, how
/// wide the pool is, and which shard of the grid this invocation owns.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Registry name of the scenario to run.
    pub scenario: String,
    /// Base seed; per-run seeds are derived via `stream_seed(base, k)`.
    pub base_seed: u64,
    /// Seeds per grid cell (≥ 1).
    pub seeds: usize,
    /// Worker threads (≥ 1). Affects wall-clock only, never output.
    pub workers: usize,
    /// Confidence level for the per-cell intervals (e.g. 0.95).
    pub confidence: f64,
    /// The grid shard this invocation owns (`Shard::full()` = all cells).
    /// Affects which cells run, never any derived seed.
    pub shard: Shard,
    /// Suppress the default panic hook's backtrace spam while the pool
    /// runs (isolated failures are *reported*, not printed). Leave off in
    /// test binaries, which share the process-global hook.
    pub quiet_panics: bool,
}

impl CampaignSpec {
    /// A spec with the workspace defaults: 5 seeds, 1 worker, 95 % CI,
    /// unsharded.
    pub fn new(scenario: &str, base_seed: u64) -> CampaignSpec {
        CampaignSpec {
            scenario: scenario.to_string(),
            base_seed,
            seeds: 5,
            workers: 1,
            confidence: 0.95,
            shard: Shard::full(),
            quiet_panics: false,
        }
    }
}

/// The outcome of one isolated run.
#[derive(Clone, Debug, PartialEq)]
pub enum RunStatus {
    /// The run completed and produced metrics.
    Ok(Metrics),
    /// The run panicked; the payload message is the cause.
    Failed(String),
}

/// One run of the campaign, in canonical order.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Grid-cell index (into [`crate::Scenario::cells`]).
    pub cell: usize,
    /// Seed index within the cell (`0..spec.seeds`).
    pub seed_index: usize,
    /// The derived per-run seed.
    pub seed: u64,
    /// What happened.
    pub status: RunStatus,
}

/// Observer of the canonical result stream as the campaign executes.
///
/// The runner drives a sink strictly in canonical order: every owned,
/// non-resumed run via [`RunSink::on_run`] (cell-major, seed-minor), and
/// every cell the moment it finalizes via [`RunSink::on_cell`]. This is
/// how the binary run-log and the resume checkpoint observe the campaign
/// without the runner retaining anything itself. A sink error aborts the
/// campaign with that message.
pub trait RunSink {
    /// Called for each completed run, in canonical order.
    fn on_run(&mut self, record: &RunRecord) -> Result<(), String> {
        let _ = record;
        Ok(())
    }

    /// Called when a cell's last seed lands and the cell finalizes.
    fn on_cell(&mut self, cell: &CellReport) -> Result<(), String> {
        let _ = cell;
        Ok(())
    }
}

/// The do-nothing sink used by [`run_campaign`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl RunSink for NullSink {}

/// A sink that retains everything it observes — the differential tests'
/// window into the canonical stream.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    /// Every run, in the order emitted.
    pub runs: Vec<RunRecord>,
    /// Every finalized cell, in the order emitted.
    pub cells: Vec<CellReport>,
}

impl RunSink for RecordingSink {
    fn on_run(&mut self, record: &RunRecord) -> Result<(), String> {
        self.runs.push(record.clone());
        Ok(())
    }

    fn on_cell(&mut self, cell: &CellReport) -> Result<(), String> {
        self.cells.push(cell.clone());
        Ok(())
    }
}

/// Fans the stream out to two sinks (run-log writer + checkpoint saver).
pub struct TeeSink<'a> {
    /// First receiver; sees each event before `second`.
    pub first: &'a mut dyn RunSink,
    /// Second receiver.
    pub second: &'a mut dyn RunSink,
}

impl RunSink for TeeSink<'_> {
    fn on_run(&mut self, record: &RunRecord) -> Result<(), String> {
        self.first.on_run(record)?;
        self.second.on_run(record)
    }

    fn on_cell(&mut self, cell: &CellReport) -> Result<(), String> {
        self.first.on_cell(cell)?;
        self.second.on_cell(cell)
    }
}

/// Cells already finalized by a previous invocation (from a checkpoint).
///
/// Resumed cells are spliced into the report verbatim and **not** re-run;
/// the sink never sees them either — their run-log records were written
/// by the invocation that completed them.
#[derive(Clone, Debug, Default)]
pub struct Resume {
    /// Finalized cell reports, any order; validated against the grid.
    pub cells: Vec<CellReport>,
}

impl Resume {
    /// No resumed cells: run everything the shard owns.
    pub fn none() -> Resume {
        Resume { cells: Vec::new() }
    }
}

/// A saved process panic hook, as returned by `std::panic::take_hook`.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// RAII guard that replaces the process panic hook with a silent one and
/// restores the previous hook on drop.
///
/// The hook is process-global state: use this only in drivers that own
/// the process (the `experiments` binary), not in library defaults.
pub struct SilencedPanics {
    prev: Option<PanicHook>,
}

impl SilencedPanics {
    /// Installs the silent hook.
    pub fn new() -> SilencedPanics {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        SilencedPanics { prev: Some(prev) }
    }
}

impl Default for SilencedPanics {
    fn default() -> Self {
        SilencedPanics::new()
    }
}

impl Drop for SilencedPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// Runs a campaign to completion with streaming aggregation.
///
/// Equivalent to [`run_campaign_with`] with no resume state and no sink.
/// Fails (with a message, never a panic) on an unknown scenario, a
/// zero-seed spec, or an internal pool error. Individual run panics do
/// *not* fail the campaign; they surface as failed cells in the report.
pub fn run_campaign(registry: &Registry, spec: &CampaignSpec) -> Result<CampaignReport, String> {
    run_campaign_with(registry, spec, &Resume::none(), &mut NullSink)
}

/// Runs a campaign with streaming aggregation, skipping `resume`d cells
/// and feeding the canonical stream through `sink`.
///
/// The report is byte-identical for any `spec.workers`, and the union of
/// all shards' reports (merged in cell order) is byte-identical to an
/// unsharded run — both pinned by the differential tests. Resumed cells
/// must match the grid (owned index, matching point, matching seed
/// count); a stale or foreign checkpoint is an error, not silent
/// mis-aggregation.
pub fn run_campaign_with(
    registry: &Registry,
    spec: &CampaignSpec,
    resume: &Resume,
    sink: &mut dyn RunSink,
) -> Result<CampaignReport, String> {
    let scenario = registry
        .get(&spec.scenario)
        .ok_or_else(|| format!("unknown scenario `{}`", spec.scenario))?;
    if spec.seeds == 0 {
        return Err("campaign needs at least one seed per cell".to_string());
    }
    // Everything below derives (cell, seed_index) as `j / spec.seeds` and
    // `j % spec.seeds`; restate the guard where the divisions live.
    debug_assert!(spec.seeds > 0);
    if !(spec.confidence > 0.0 && spec.confidence < 1.0) {
        return Err(format!("confidence {} outside (0, 1)", spec.confidence));
    }
    let workers = spec.workers.max(1);
    let grid = scenario.cells();
    let owned: Vec<usize> = (0..grid.len()).filter(|&c| spec.shard.owns(c)).collect();

    // Validate the resume state against this spec's grid before trusting
    // a single cell of it.
    let mut resumed: BTreeMap<usize, CellReport> = BTreeMap::new();
    for cell in &resume.cells {
        if !spec.shard.owns(cell.index) {
            return Err(format!(
                "checkpoint cell {} is not owned by shard {}",
                cell.index,
                spec.shard.label()
            ));
        }
        let point = grid.get(cell.index).ok_or_else(|| {
            format!(
                "checkpoint cell {} outside the {}-cell grid (stale checkpoint?)",
                cell.index,
                grid.len()
            )
        })?;
        if &cell.point != point {
            return Err(format!(
                "checkpoint cell {} was [{}] but the grid has [{}] (stale checkpoint?)",
                cell.index,
                cell.point.label(),
                point.label()
            ));
        }
        if cell.seeds != spec.seeds {
            return Err(format!(
                "checkpoint cell {} holds {} seeds, spec wants {}",
                cell.index, cell.seeds, spec.seeds
            ));
        }
        if resumed.insert(cell.index, cell.clone()).is_some() {
            return Err(format!("checkpoint lists cell {} twice", cell.index));
        }
    }

    // Pending cells: owned, not already finalized by a previous run.
    let pending: Vec<usize> = owned
        .iter()
        .copied()
        .filter(|c| !resumed.contains_key(c))
        .collect();
    let n_pending_runs = pending.len() * spec.seeds;

    let _quiet = if spec.quiet_panics {
        Some(SilencedPanics::new())
    } else {
        None
    };

    // Fan out: workers claim pending-run indices `j` from a shared
    // counter and stream `(j, status)` back over a channel — no shared
    // mutable results, no locks on the hot path. The aggregator below is
    // the only consumer of results.
    let next = AtomicUsize::new(0);
    let run_one = |j: usize| -> RunStatus {
        let slot = j / spec.seeds;
        let seed_index = j % spec.seeds;
        let status = pending
            .get(slot)
            .and_then(|&cell| grid.get(cell).map(|point| (cell, point)))
            .map(|(cell, point)| {
                let k = cell * spec.seeds + seed_index;
                let seed = tm_rand::stream_seed(spec.base_seed, k as u64);
                match crate::isolate(|| (scenario.run)(point, seed)) {
                    Ok(metrics) => RunStatus::Ok(metrics),
                    Err(cause) => RunStatus::Failed(cause),
                }
            });
        match status {
            Some(status) => status,
            // Unreachable: j < n_pending_runs and every pending cell is a
            // grid index. Reported as a failure rather than a panic.
            None => RunStatus::Failed("internal: pending-run index out of range".to_string()),
        }
    };

    let (tx, rx) = mpsc::channel::<(usize, RunStatus)>();
    let mut fresh: Vec<CellReport> = Vec::new();
    let mut stream_error: Option<String> = None;
    let pool_result: Result<(), String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let tx = tx.clone();
                scope.spawn(|| {
                    let tx = tx;
                    loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= n_pending_runs {
                            break;
                        }
                        // The aggregator may have bailed (sink error);
                        // a closed channel just means "stop caring".
                        let _ = tx.send((j, run_one(j)));
                    }
                })
            })
            .collect();
        drop(tx);

        // The aggregator: release results strictly in canonical order via
        // a reorder buffer, feed the open cell's accumulator, finalize
        // cells as their last seed lands.
        let mut buffer: BTreeMap<usize, RunStatus> = BTreeMap::new();
        let mut next_emit = 0usize;
        let mut open: Option<CellAccumulator> = None;
        'drain: for (j, status) in &rx {
            buffer.insert(j, status);
            while let Some(status) = buffer.remove(&next_emit) {
                let slot = next_emit / spec.seeds;
                let seed_index = next_emit % spec.seeds;
                let Some(&cell) = pending.get(slot) else {
                    stream_error = Some(format!("emitted run {next_emit} has no pending cell"));
                    break 'drain;
                };
                let k = cell * spec.seeds + seed_index;
                let record = RunRecord {
                    cell,
                    seed_index,
                    seed: tm_rand::stream_seed(spec.base_seed, k as u64),
                    status,
                };
                if let Err(e) = sink.on_run(&record) {
                    stream_error = Some(e);
                    break 'drain;
                }
                let acc = open.get_or_insert_with(|| {
                    CellAccumulator::new(cell, record_point(&grid, cell), spec.seeds)
                });
                acc.absorb(&record);
                if acc.is_complete() {
                    let done = open.take().map(|a| a.finalize(spec.confidence));
                    if let Some(done) = done {
                        if let Err(e) = sink.on_cell(&done) {
                            stream_error = Some(e);
                            break 'drain;
                        }
                        fresh.push(done);
                    }
                }
                next_emit += 1;
            }
        }
        // Receiver dropped early on error; workers notice the closed
        // channel and wind down on their own.
        drop(rx);
        for h in handles {
            h.join()
                .map_err(|_| "campaign worker died outside run isolation".to_string())?;
        }
        if stream_error.is_none() && next_emit != n_pending_runs {
            return Err(format!("pool emitted {next_emit} of {n_pending_runs} runs"));
        }
        Ok(())
    });
    pool_result?;
    if let Some(e) = stream_error {
        return Err(e);
    }

    // Canonical splice: resumed + fresh cells, ordered by cell index.
    let mut cells: Vec<CellReport> = resumed.into_values().chain(fresh).collect();
    cells.sort_by_key(|c| c.index);

    Ok(CampaignReport {
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        base_seed: spec.base_seed,
        seeds: spec.seeds,
        confidence: spec.confidence,
        shard: spec.shard,
        grid_cells: grid.len(),
        total_runs: owned.len() * spec.seeds,
        cells,
    })
}

/// The grid point for `cell`, cloned; an out-of-range index (impossible
/// for runner-emitted cells) yields an empty point rather than a panic.
fn record_point(grid: &[crate::registry::GridPoint], cell: usize) -> crate::registry::GridPoint {
    grid.get(cell)
        .cloned()
        .unwrap_or(crate::registry::GridPoint { coords: Vec::new() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Axis, Scenario};

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(Scenario::new(
            "synthetic",
            "pure arithmetic on the seed",
            vec![Axis::new("a", &["x", "y"])],
            |point, seed| {
                let bias = if point.get("a") == Some("x") {
                    1.0
                } else {
                    2.0
                };
                Metrics::new()
                    .with("value", bias * (seed % 1000) as f64)
                    .with("flag", f64::from(u8::from(seed % 2 == 0)))
            },
        ))
        .expect("register");
        r
    }

    #[test]
    fn unknown_scenario_and_bad_spec_are_errors() {
        let r = registry();
        assert!(run_campaign(&r, &CampaignSpec::new("missing", 1)).is_err());
        let mut zero_seeds = CampaignSpec::new("synthetic", 1);
        zero_seeds.seeds = 0;
        assert!(run_campaign(&r, &zero_seeds).is_err());
        let mut bad_conf = CampaignSpec::new("synthetic", 1);
        bad_conf.confidence = 1.0;
        assert!(run_campaign(&r, &bad_conf).is_err());
    }

    #[test]
    fn sink_sees_runs_cell_major_with_derived_seeds() {
        let mut spec = CampaignSpec::new("synthetic", 0xC0FFEE);
        spec.seeds = 3;
        let mut sink = RecordingSink::default();
        let report =
            run_campaign_with(&registry(), &spec, &Resume::none(), &mut sink).expect("campaign");
        assert_eq!(report.total_runs, 6);
        assert_eq!(sink.runs.len(), 6);
        assert_eq!(sink.cells.len(), 2);
        for (k, run) in sink.runs.iter().enumerate() {
            assert_eq!(run.cell, k / 3);
            assert_eq!(run.seed_index, k % 3);
            assert_eq!(run.seed, tm_rand::stream_seed(0xC0FFEE, k as u64));
            assert!(matches!(run.status, RunStatus::Ok(_)));
        }
        assert_eq!(
            sink.cells, report.cells,
            "sink cells are the report's cells"
        );
    }

    #[test]
    fn worker_count_does_not_change_the_rendered_bytes() {
        let mut base = CampaignSpec::new("synthetic", 0xBEEF);
        base.seeds = 7;
        let one = run_campaign(&registry(), &base).expect("1 worker");
        for workers in [2, 5, 8] {
            let mut spec = base.clone();
            spec.workers = workers;
            let many = run_campaign(&registry(), &spec).expect("n workers");
            assert_eq!(one.render(), many.render(), "workers={workers}");
            assert_eq!(one, many, "workers={workers}");
        }
    }

    #[test]
    fn resumed_cells_are_skipped_and_spliced() {
        let mut spec = CampaignSpec::new("synthetic", 5);
        spec.seeds = 4;
        let full = run_campaign(&registry(), &spec).expect("full run");
        // Resume with cell 0 finalized: only cell 1 re-runs, output is
        // byte-identical to the full run.
        let resume = Resume {
            cells: vec![full.cells[0].clone()],
        };
        let mut sink = RecordingSink::default();
        let resumed =
            run_campaign_with(&registry(), &spec, &resume, &mut sink).expect("resumed run");
        assert_eq!(resumed.render(), full.render());
        assert_eq!(resumed, full);
        assert!(
            sink.runs.iter().all(|r| r.cell == 1),
            "cell 0 must not re-run"
        );
        assert_eq!(
            sink.cells.len(),
            1,
            "sink only sees freshly finalized cells"
        );
    }

    #[test]
    fn stale_resume_state_is_rejected() {
        let mut spec = CampaignSpec::new("synthetic", 5);
        spec.seeds = 2;
        let full = run_campaign(&registry(), &spec).expect("full run");

        let mut wrong_seeds = full.cells[0].clone();
        wrong_seeds.seeds = 9;
        let err = run_campaign_with(
            &registry(),
            &spec,
            &Resume {
                cells: vec![wrong_seeds],
            },
            &mut NullSink,
        );
        assert!(err.is_err(), "seed-count mismatch must be rejected");

        let mut wrong_index = full.cells[0].clone();
        wrong_index.index = 99;
        let err = run_campaign_with(
            &registry(),
            &spec,
            &Resume {
                cells: vec![wrong_index],
            },
            &mut NullSink,
        );
        assert!(err.is_err(), "out-of-grid index must be rejected");

        let dup = Resume {
            cells: vec![full.cells[0].clone(), full.cells[0].clone()],
        };
        assert!(
            run_campaign_with(&registry(), &spec, &dup, &mut NullSink).is_err(),
            "duplicate cells must be rejected"
        );
    }

    #[test]
    fn sink_errors_abort_the_campaign() {
        struct FailingSink;
        impl RunSink for FailingSink {
            fn on_run(&mut self, _: &RunRecord) -> Result<(), String> {
                Err("disk full".to_string())
            }
        }
        let spec = CampaignSpec::new("synthetic", 1);
        let err = run_campaign_with(&registry(), &spec, &Resume::none(), &mut FailingSink);
        assert_eq!(err.unwrap_err(), "disk full");
    }
}
