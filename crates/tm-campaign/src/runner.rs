//! The worker-pool executor: fans `(grid-cell, seed)` runs out across a
//! fixed-size thread pool and merges results in canonical order.
//!
//! Threading model (the determinism argument, also in DESIGN.md):
//!
//! * The canonical run list — cell-major, seed-minor — is enumerated
//!   up front. Run `k`'s seed is [`tm_rand::stream_seed`]`(base, k)`, a
//!   pure function of the spec.
//! * Workers pull run *indices* from an atomic counter. Which worker
//!   executes which run, and in what real-time order runs finish, is
//!   scheduler-dependent — but each run is a self-contained,
//!   single-threaded pure function, and its result is written into the
//!   slot for index `k`.
//! * After the pool joins, the slots are read out `0..n`: the merged
//!   stream is identical for any worker count, so everything derived from
//!   it is too.
//!
//! Each run body executes under [`crate::isolate`], so a panic in one
//! parameter point is recorded as [`RunStatus::Failed`] with its message
//! and the campaign continues.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::aggregate::{aggregate, CampaignReport};
use crate::registry::{Metrics, Registry};

/// A campaign specification: which scenario, how many seeds per cell, and
/// how wide the pool is.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Registry name of the scenario to run.
    pub scenario: String,
    /// Base seed; per-run seeds are derived via `stream_seed(base, k)`.
    pub base_seed: u64,
    /// Seeds per grid cell (≥ 1).
    pub seeds: usize,
    /// Worker threads (≥ 1). Affects wall-clock only, never output.
    pub workers: usize,
    /// Confidence level for the per-cell intervals (e.g. 0.95).
    pub confidence: f64,
    /// Suppress the default panic hook's backtrace spam while the pool
    /// runs (isolated failures are *reported*, not printed). Leave off in
    /// test binaries, which share the process-global hook.
    pub quiet_panics: bool,
}

impl CampaignSpec {
    /// A spec with the workspace defaults: 5 seeds, 1 worker, 95 % CI.
    pub fn new(scenario: &str, base_seed: u64) -> CampaignSpec {
        CampaignSpec {
            scenario: scenario.to_string(),
            base_seed,
            seeds: 5,
            workers: 1,
            confidence: 0.95,
            quiet_panics: false,
        }
    }
}

/// The outcome of one isolated run.
#[derive(Clone, Debug, PartialEq)]
pub enum RunStatus {
    /// The run completed and produced metrics.
    Ok(Metrics),
    /// The run panicked; the payload message is the cause.
    Failed(String),
}

/// One run of the campaign, in canonical order.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Grid-cell index (into [`crate::Scenario::cells`]).
    pub cell: usize,
    /// Seed index within the cell (`0..spec.seeds`).
    pub seed_index: usize,
    /// The derived per-run seed.
    pub seed: u64,
    /// What happened.
    pub status: RunStatus,
}

/// A saved process panic hook, as returned by `std::panic::take_hook`.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// RAII guard that replaces the process panic hook with a silent one and
/// restores the previous hook on drop.
///
/// The hook is process-global state: use this only in drivers that own
/// the process (the `experiments` binary), not in library defaults.
pub struct SilencedPanics {
    prev: Option<PanicHook>,
}

impl SilencedPanics {
    /// Installs the silent hook.
    pub fn new() -> SilencedPanics {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        SilencedPanics { prev: Some(prev) }
    }
}

impl Default for SilencedPanics {
    fn default() -> Self {
        SilencedPanics::new()
    }
}

impl Drop for SilencedPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// Runs a campaign to completion and aggregates the merged result stream.
///
/// Fails (with a message, never a panic) on an unknown scenario, a
/// zero-seed spec, or an internal pool error. Individual run panics do
/// *not* fail the campaign; they surface as failed cells in the report.
pub fn run_campaign(registry: &Registry, spec: &CampaignSpec) -> Result<CampaignReport, String> {
    let scenario = registry
        .get(&spec.scenario)
        .ok_or_else(|| format!("unknown scenario `{}`", spec.scenario))?;
    if spec.seeds == 0 {
        return Err("campaign needs at least one seed per cell".to_string());
    }
    // Everything below derives (cell, seed_index) as `k / spec.seeds` and
    // `k % spec.seeds`; restate the guard where the divisions live.
    debug_assert!(spec.seeds > 0);
    if !(spec.confidence > 0.0 && spec.confidence < 1.0) {
        return Err(format!("confidence {} outside (0, 1)", spec.confidence));
    }
    let workers = spec.workers.max(1);
    let cells = scenario.cells();
    let n_runs = cells.len() * spec.seeds;

    let _quiet = if spec.quiet_panics {
        Some(SilencedPanics::new())
    } else {
        None
    };

    // Fan out: workers claim canonical run indices from a shared counter
    // and collect `(index, status)` locally — no shared mutable results,
    // no locks on the hot path.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<RunStatus>> = vec![None; n_runs];
    let run_one = |k: usize| -> RunStatus {
        let cell = k / spec.seeds;
        let seed = tm_rand::stream_seed(spec.base_seed, k as u64);
        match crate::isolate(|| (scenario.run)(&cells[cell], seed)) {
            Ok(metrics) => RunStatus::Ok(metrics),
            Err(cause) => RunStatus::Failed(cause),
        }
    };
    let pool_result: Result<Vec<Vec<(usize, RunStatus)>>, String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n_runs {
                            break;
                        }
                        done.push((k, run_one(k)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "campaign worker died outside run isolation".to_string())
            })
            .collect()
    });

    // Canonical merge: slot placement by index, then an ordered walk.
    for (k, status) in pool_result?.into_iter().flatten() {
        slots[k] = Some(status);
    }
    let mut runs = Vec::with_capacity(n_runs);
    for (k, slot) in slots.into_iter().enumerate() {
        let status = slot.ok_or_else(|| format!("run {k} produced no result"))?;
        runs.push(RunRecord {
            cell: k / spec.seeds,
            seed_index: k % spec.seeds,
            seed: tm_rand::stream_seed(spec.base_seed, k as u64),
            status,
        });
    }
    Ok(aggregate(scenario, spec, cells, runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Axis, Scenario};

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(Scenario::new(
            "synthetic",
            "pure arithmetic on the seed",
            vec![Axis::new("a", &["x", "y"])],
            |point, seed| {
                let bias = if point.get("a") == Some("x") {
                    1.0
                } else {
                    2.0
                };
                Metrics::new()
                    .with("value", bias * (seed % 1000) as f64)
                    .with("flag", f64::from(u8::from(seed % 2 == 0)))
            },
        ))
        .expect("register");
        r
    }

    #[test]
    fn unknown_scenario_and_bad_spec_are_errors() {
        let r = registry();
        assert!(run_campaign(&r, &CampaignSpec::new("missing", 1)).is_err());
        let mut zero_seeds = CampaignSpec::new("synthetic", 1);
        zero_seeds.seeds = 0;
        assert!(run_campaign(&r, &zero_seeds).is_err());
        let mut bad_conf = CampaignSpec::new("synthetic", 1);
        bad_conf.confidence = 1.0;
        assert!(run_campaign(&r, &bad_conf).is_err());
    }

    #[test]
    fn runs_enumerate_cell_major_with_derived_seeds() {
        let mut spec = CampaignSpec::new("synthetic", 0xC0FFEE);
        spec.seeds = 3;
        let report = run_campaign(&registry(), &spec).expect("campaign");
        assert_eq!(report.runs.len(), 6);
        for (k, run) in report.runs.iter().enumerate() {
            assert_eq!(run.cell, k / 3);
            assert_eq!(run.seed_index, k % 3);
            assert_eq!(run.seed, tm_rand::stream_seed(0xC0FFEE, k as u64));
            assert!(matches!(run.status, RunStatus::Ok(_)));
        }
    }
}
