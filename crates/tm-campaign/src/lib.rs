//! The campaign runner: (scenario × parameter-grid × seed-range) batch
//! execution with a worker-thread pool, per-run panic isolation, and
//! deterministic streaming aggregation.
//!
//! Every other crate in this workspace is single-threaded by contract —
//! the simulation must be a pure function of `(scenario, seed)`. This
//! crate is the one deliberate exception, and it preserves the contract
//! one level up: a **campaign's output is a pure function of (spec,
//! base seed)**, regardless of worker count or OS scheduling. Three
//! mechanisms make that true:
//!
//! 1. **Per-run seed derivation.** Run `k` of a campaign draws its seed
//!    as [`tm_rand::stream_seed`]`(base, k)` — a pure function of the
//!    base seed and the run's canonical index, never of which thread
//!    picks the run up or when.
//! 2. **Single-threaded runs.** Each worker executes one fully
//!    sequential, deterministic simulation at a time; threads never share
//!    simulation state. The pool only distributes *which* runs execute
//!    where.
//! 3. **Canonical-order merge.** Results are placed into a slot indexed
//!    by `(grid-cell, seed-index)` and aggregated by walking those slots
//!    in order, so the merged stream — and therefore every aggregate,
//!    table and JSON record derived from it — is byte-identical for
//!    `--workers 1` and `--workers 8`. A regression test pins this.
//!
//! Failure isolation: each run executes under [`isolate`]
//! (`catch_unwind`), so one panicking parameter point becomes a reported
//! `FAILED(<cause>)` cell instead of killing the whole campaign. The same
//! wrapper is exported for serial drivers (the detection matrix, the
//! sweeps) that want per-cell isolation without the pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod registry;
pub mod runner;

pub use aggregate::{CampaignReport, CellReport, MetricAggregate};
pub use registry::{Axis, GridPoint, Metrics, Registry, Scenario};
pub use runner::{run_campaign, CampaignSpec, RunRecord, RunStatus};

/// Runs `f` with panics captured as errors.
///
/// The returned `Err` carries the panic message (for `panic!("…")` and
/// `assert!` payloads; other payload types report a placeholder), which
/// drivers render as `FAILED(<cause>)` in the affected table cell. The
/// message is a pure function of the panic site, so isolated failures do
/// not break output determinism.
pub fn isolate<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolate_passes_values_through() {
        assert_eq!(isolate(|| 41 + 1), Ok(42));
    }

    #[test]
    fn isolate_captures_str_and_string_panics() {
        let quiet = runner::SilencedPanics::new();
        assert_eq!(
            isolate(|| panic!("static cause")),
            Err::<(), _>("static cause".into())
        );
        let n = 7;
        assert_eq!(
            isolate(|| panic!("cell {n} bad")),
            Err::<(), _>("cell 7 bad".into())
        );
        drop(quiet);
    }
}
