//! The campaign runner: (scenario × parameter-grid × seed-range) batch
//! execution with a worker-thread pool, per-run panic isolation,
//! streaming per-cell aggregation, and deterministic sharding with
//! resumable checkpoints.
//!
//! Every other crate in this workspace is single-threaded by contract —
//! the simulation must be a pure function of `(scenario, seed)`. This
//! crate is the one deliberate exception, and it preserves the contract
//! one level up: a **campaign's output is a pure function of (spec,
//! base seed)**, regardless of worker count, OS scheduling, or how the
//! grid is split across shards. Four mechanisms make that true:
//!
//! 1. **Per-run seed derivation.** Run `k` of a campaign draws its seed
//!    as [`tm_rand::stream_seed`]`(base, k)` where `k = cell × seeds +
//!    seed_index` is the run's **global** canonical index — a pure
//!    function of the spec, never of which thread picks the run up, when
//!    it finishes, or which shard executes it.
//! 2. **Single-threaded runs.** Each worker executes one fully
//!    sequential, deterministic simulation at a time; threads never share
//!    simulation state. The pool only distributes *which* runs execute
//!    where.
//! 3. **Canonical-order streaming merge.** A reorder buffer releases
//!    results strictly in `(grid-cell, seed-index)` order into one open
//!    [`CellAccumulator`] (Welford) at a time, so the merged stream — and
//!    therefore every aggregate, table and JSON record derived from it —
//!    is byte-identical for `--workers 1` and `--workers 8`, while peak
//!    memory stays O(cells), not O(runs). Regression tests pin this
//!    against the retained two-pass reference
//!    ([`aggregate_two_pass`]).
//! 4. **Cell-granular sharding.** [`Shard`] `i/n` owns cells
//!    `index ≡ i (mod n)`; seeds are derived from global indices, so the
//!    union of all shards' streams merged back into canonical order is
//!    the unsharded stream, byte for byte. [`checkpoint`] adds atomic
//!    crash-safe resume on top.
//!
//! Failure isolation: each run executes under [`isolate`]
//! (`catch_unwind`), so one panicking parameter point becomes a reported
//! `FAILED(<cause>)` cell instead of killing the whole campaign. The same
//! wrapper is exported for serial drivers (the detection matrix, the
//! sweeps) that want per-cell isolation without the pool.
//!
//! # Example: shard a campaign, then prove the merge is exact
//!
//! ```
//! use tm_campaign::{
//!     run_campaign, Axis, CampaignSpec, Metrics, Registry, Scenario, Shard,
//! };
//!
//! let mut registry = Registry::new();
//! registry
//!     .register(Scenario::new(
//!         "demo",
//!         "seed arithmetic",
//!         vec![Axis::new("k", &["2", "3", "5"])],
//!         |point, seed| {
//!             let k: u64 = point.get("k").unwrap().parse().unwrap();
//!             Metrics::new().with("residue", (seed % k) as f64)
//!         },
//!     ))
//!     .unwrap();
//!
//! let mut spec = CampaignSpec::new("demo", 0xD5_2018);
//! spec.seeds = 6;
//! let whole = run_campaign(&registry, &spec).unwrap();
//!
//! // Run the same campaign as two shards and splice their cells.
//! let mut cells = Vec::new();
//! for index in 0..2 {
//!     let mut shard_spec = spec.clone();
//!     shard_spec.shard = Shard { index, count: 2 };
//!     cells.extend(run_campaign(&registry, &shard_spec).unwrap().cells);
//! }
//! cells.sort_by_key(|c| c.index);
//! assert_eq!(cells, whole.cells); // byte-identical aggregates
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregate;
pub mod checkpoint;
pub mod codec;
pub mod registry;
pub mod runner;
pub mod shard;

pub use aggregate::{
    aggregate_stream, aggregate_two_pass, CampaignMeta, CampaignReport, CellAccumulator,
    CellReport, MetricAggregate,
};
pub use checkpoint::{grid_fingerprint, CheckpointHeader, Saver};
pub use registry::{grid_of, Axis, GridPoint, Metrics, Registry, Scenario};
pub use runner::{
    run_campaign, run_campaign_with, CampaignSpec, NullSink, RecordingSink, Resume, RunRecord,
    RunSink, RunStatus, TeeSink,
};
pub use shard::Shard;

/// Runs `f` with panics captured as errors.
///
/// The returned `Err` carries the panic message (for `panic!("…")` and
/// `assert!` payloads; other payload types report a placeholder), which
/// drivers render as `FAILED(<cause>)` in the affected table cell. The
/// message is a pure function of the panic site, so isolated failures do
/// not break output determinism.
pub fn isolate<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolate_passes_values_through() {
        assert_eq!(isolate(|| 41 + 1), Ok(42));
    }

    #[test]
    fn isolate_captures_str_and_string_panics() {
        let quiet = runner::SilencedPanics::new();
        assert_eq!(
            isolate(|| panic!("static cause")),
            Err::<(), _>("static cause".into())
        );
        let n = 7;
        assert_eq!(
            isolate(|| panic!("cell {n} bad")),
            Err::<(), _>("cell 7 bad".into())
        );
        drop(quiet);
    }
}
