//! Streaming aggregation over the canonical merged run stream: per-cell
//! Welford accumulators, confidence intervals, and the paper-style
//! `value ± CI` text report.
//!
//! Two aggregation paths exist, and they are **byte-identical** by
//! construction:
//!
//! * [`CellAccumulator`] / [`aggregate_stream`] — the streaming path the
//!   runner and `campaign replay` use. Each open cell folds its runs into
//!   [`tm_stats::OnlineStats`] (Welford) accumulators as they arrive in
//!   canonical `(cell, seed-index)` order; when the cell's last seed
//!   lands, the accumulator finalizes into a [`CellReport`] and the raw
//!   per-run metrics are dropped. Resident memory is O(cells) finalized
//!   reports plus O(seeds) samples for the handful of still-open cells —
//!   never O(runs).
//! * [`aggregate_two_pass`] — the original collect-then-summarize
//!   reference implementation, retained so the differential suite
//!   (`crates/tm-campaign/tests/campaign.rs`,
//!   `crates/bench/tests/streaming_diff.rs`) can pin the streaming path
//!   against it over every registered scenario.
//!
//! Why the two agree to the byte: [`tm_stats::Summary::of`] *is* a
//! sequential Welford fold, so pushing the same samples in the same
//! canonical order into an [`tm_stats::OnlineStats`] produces bit-equal
//! mean/sd/min/max; the t-interval is derived from that summary via
//! [`tm_stats::t_interval_of`] on both paths; and the exact median is
//! computed from the cell's own sample buffer, which the streaming path
//! keeps only while the cell is open. No re-ordering, no re-rounding.

use tm_stats::{quantile, t_interval_of, OnlineStats};

use crate::registry::{GridPoint, Scenario};
use crate::runner::{CampaignSpec, RunRecord, RunStatus};
use crate::shard::Shard;

/// Aggregate statistics for one metric across a cell's successful seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricAggregate {
    /// Metric name, as recorded by the adapter.
    pub name: String,
    /// Number of samples (successful runs recording this metric).
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Half-width of the Student-t interval on the mean at
    /// [`CampaignReport::confidence`].
    pub ci_half: f64,
    /// Median (empirical, type-7).
    pub q50: f64,
}

impl MetricAggregate {
    /// `mean ± ci_half` with the given precision.
    pub fn mean_pm_ci(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.ci_half)
    }
}

/// Aggregates for one grid cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    /// Canonical cell index.
    pub index: usize,
    /// The cell's grid point.
    pub point: GridPoint,
    /// Seeds attempted.
    pub seeds: usize,
    /// Failed runs as `(seed, cause)`, in seed order.
    pub failures: Vec<(u64, String)>,
    /// Per-metric aggregates, in first-recorded order.
    pub metrics: Vec<MetricAggregate>,
}

impl CellReport {
    /// Successful run count.
    pub fn ok(&self) -> usize {
        self.seeds - self.failures.len()
    }
}

/// Streaming per-cell aggregation state.
///
/// Absorbs the cell's runs in canonical seed order, keeping a Welford
/// accumulator per metric (plus the raw samples, needed only for the
/// exact median and dropped at [`CellAccumulator::finalize`]). One
/// accumulator is O(seeds) resident; the runner holds accumulators only
/// for cells whose runs are still in flight.
#[derive(Clone, Debug)]
pub struct CellAccumulator {
    index: usize,
    point: GridPoint,
    seeds: usize,
    names: Vec<String>,
    stats: Vec<OnlineStats>,
    samples: Vec<Vec<f64>>,
    failures: Vec<(u64, String)>,
    absorbed: usize,
}

impl CellAccumulator {
    /// An empty accumulator for the given cell.
    pub fn new(index: usize, point: GridPoint, seeds: usize) -> CellAccumulator {
        CellAccumulator {
            index,
            point,
            seeds,
            names: Vec::new(),
            stats: Vec::new(),
            samples: Vec::new(),
            failures: Vec::new(),
            absorbed: 0,
        }
    }

    /// The cell's canonical index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Runs absorbed so far.
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// Whether all of the cell's seeds have been absorbed.
    pub fn is_complete(&self) -> bool {
        self.absorbed >= self.seeds
    }

    /// Folds one run into the accumulator.
    ///
    /// Runs must arrive in canonical seed order (`seed_index` equal to
    /// [`CellAccumulator::absorbed`]) for the aggregates to be
    /// byte-identical to the two-pass reference; a `debug_assert` states
    /// the contract. Duplicate metric names within one record follow
    /// [`crate::Metrics::get`] semantics: the first value wins.
    pub fn absorb(&mut self, record: &RunRecord) {
        debug_assert_eq!(record.cell, self.index, "record routed to wrong cell");
        debug_assert_eq!(
            record.seed_index, self.absorbed,
            "runs must arrive in seed order"
        );
        match &record.status {
            RunStatus::Ok(metrics) => {
                // Slots touched by this record, so a duplicate name in one
                // record contributes only its first value (like the
                // two-pass path's `Metrics::get`).
                let mut touched: Vec<usize> = Vec::new();
                for (name, value) in metrics.entries() {
                    let slot = match self.names.iter().position(|n| n == name) {
                        Some(slot) => slot,
                        None => {
                            self.names.push(name.clone());
                            self.stats.push(OnlineStats::new());
                            self.samples.push(Vec::new());
                            self.names.len() - 1
                        }
                    };
                    if touched.contains(&slot) {
                        continue;
                    }
                    touched.push(slot);
                    if let (Some(stats), Some(samples)) =
                        (self.stats.get_mut(slot), self.samples.get_mut(slot))
                    {
                        stats.push(*value);
                        samples.push(*value);
                    }
                }
            }
            RunStatus::Failed(cause) => self.failures.push((record.seed, cause.clone())),
        }
        self.absorbed += 1;
    }

    /// Finalizes the cell: snapshots every Welford accumulator, derives
    /// the t-interval from the snapshot, takes the exact median from the
    /// retained samples, and drops everything else.
    pub fn finalize(self, confidence: f64) -> CellReport {
        let metrics = self
            .names
            .into_iter()
            .zip(self.stats)
            .zip(self.samples)
            .map(|((name, stats), samples)| {
                let s = stats.summary();
                let ci_half = t_interval_of(&s, confidence)
                    .map(|ci| ci.half_width)
                    .unwrap_or(0.0);
                MetricAggregate {
                    name,
                    n: s.count,
                    mean: s.mean,
                    sd: s.sd,
                    min: s.min,
                    max: s.max,
                    ci_half,
                    q50: quantile(&samples, 0.5).unwrap_or(0.0),
                }
            })
            .collect();
        CellReport {
            index: self.index,
            point: self.point,
            seeds: self.seeds,
            failures: self.failures,
            metrics,
        }
    }
}

/// The descriptive header shared by live campaigns, checkpoints, and
/// run-log replay: everything [`aggregate_stream`] needs besides the grid
/// and the records themselves.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignMeta {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description (from the registry).
    pub description: String,
    /// The spec's base seed.
    pub base_seed: u64,
    /// Seeds per cell.
    pub seeds: usize,
    /// Confidence level of the intervals.
    pub confidence: f64,
    /// The shard this stream covers (`Shard::full()` for a merged or
    /// unsharded stream).
    pub shard: Shard,
}

impl CampaignMeta {
    /// The meta block for a spec over the given scenario.
    pub fn for_spec(scenario: &Scenario, spec: &CampaignSpec) -> CampaignMeta {
        CampaignMeta {
            scenario: scenario.name.clone(),
            description: scenario.description.clone(),
            base_seed: spec.base_seed,
            seeds: spec.seeds,
            confidence: spec.confidence,
            shard: spec.shard,
        }
    }
}

/// The full campaign result: per-cell aggregates in canonical cell order.
///
/// Everything here — including [`CampaignReport::render`] — is a pure
/// function of the merged canonical run stream, so it is byte-identical
/// for any worker count and any shard split (after merging). Unlike the
/// original collect-everything design, the report no longer retains the
/// raw runs; [`CampaignReport::total_runs`] keeps the totals line exact.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description (from the registry).
    pub description: String,
    /// The spec's base seed.
    pub base_seed: u64,
    /// Seeds per cell.
    pub seeds: usize,
    /// Confidence level of the intervals.
    pub confidence: f64,
    /// The shard this report covers (`Shard::full()` when unsharded).
    pub shard: Shard,
    /// Total number of cells in the scenario's grid (across all shards).
    pub grid_cells: usize,
    /// Runs this report covers (owned cells × seeds).
    pub total_runs: usize,
    /// Per-cell aggregates for the cells this shard owns, in canonical
    /// cell order.
    pub cells: Vec<CellReport>,
}

impl CampaignReport {
    /// Total failed runs across all cells.
    pub fn total_failures(&self) -> usize {
        self.cells.iter().map(|c| c.failures.len()).sum()
    }

    /// Renders the paper-style report: one block per cell, one
    /// `metric  mean ± CI` line per metric, failures called out inline.
    ///
    /// An unsharded report renders exactly as the original in-memory
    /// runner did; a shard report carries a `[shard i/n]` marker and its
    /// owned-cell count so partial output cannot be mistaken for the
    /// merged result.
    pub fn render(&self) -> String {
        let mut out = if self.shard.is_full() {
            format!(
                "CAMPAIGN {name}: {cells} cells x {seeds} seeds (base seed {seed:#x}, {conf:.0}% CI)\n",
                name = self.scenario,
                cells = self.cells.len(),
                seeds = self.seeds,
                seed = self.base_seed,
                conf = self.confidence * 100.0,
            )
        } else {
            format!(
                "CAMPAIGN {name} [shard {shard}]: {owned} of {cells} cells x {seeds} seeds (base seed {seed:#x}, {conf:.0}% CI)\n",
                name = self.scenario,
                shard = self.shard.label(),
                owned = self.cells.len(),
                cells = self.grid_cells,
                seeds = self.seeds,
                seed = self.base_seed,
                conf = self.confidence * 100.0,
            )
        };
        out.push_str(&format!("  {}\n\n", self.description));
        for cell in &self.cells {
            out.push_str(&format!(
                "[{label}] seeds={seeds} ok={ok} failed={failed}\n",
                label = cell.point.label(),
                seeds = cell.seeds,
                ok = cell.ok(),
                failed = cell.failures.len(),
            ));
            for m in &cell.metrics {
                out.push_str(&format!(
                    "  {name:<28} {pm:>24}  (n={n}, sd {sd:.3}, min {min:.3}, q50 {q50:.3}, max {max:.3})\n",
                    name = m.name,
                    pm = m.mean_pm_ci(3),
                    n = m.n,
                    sd = m.sd,
                    min = m.min,
                    q50 = m.q50,
                    max = m.max,
                ));
            }
            for (seed, cause) in &cell.failures {
                out.push_str(&format!("  FAILED(seed {seed:#018x}): {cause}\n"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "total: {ok}/{all} runs ok, {failed} failed\n",
            ok = self.total_runs - self.total_failures(),
            all = self.total_runs,
            failed = self.total_failures(),
        ));
        out
    }
}

/// Folds an already-canonical run stream into a [`CampaignReport`] with
/// O(cells) resident memory: one [`CellAccumulator`] open at a time.
///
/// This is the replay path (`campaign replay` re-aggregates a run-log
/// through here) and the reference for what the live runner computes
/// incrementally. The stream must be in canonical order — cells strictly
/// increasing, each cell's `seed_index` running `0..meta.seeds` — and
/// each record's stored seed must match its canonical derivation;
/// violations produce an error naming the offending record, never a
/// panic or a silently wrong table.
///
/// The stream may cover a subset of the grid's cells (a single shard's
/// log); the report then describes exactly the cells present.
pub fn aggregate_stream(
    meta: &CampaignMeta,
    grid: &[GridPoint],
    records: impl IntoIterator<Item = RunRecord>,
) -> Result<CampaignReport, String> {
    if meta.seeds == 0 {
        return Err("campaign needs at least one seed per cell".to_string());
    }
    let mut cells: Vec<CellReport> = Vec::new();
    let mut open: Option<CellAccumulator> = None;
    for record in records {
        let point = grid.get(record.cell).ok_or_else(|| {
            format!(
                "record for cell {} outside the {}-cell grid",
                record.cell,
                grid.len()
            )
        })?;
        if record.seed_index >= meta.seeds {
            return Err(format!(
                "record for cell {} has seed index {} outside 0..{}",
                record.cell, record.seed_index, meta.seeds
            ));
        }
        let k = record.cell * meta.seeds + record.seed_index;
        let expect_seed = tm_rand::stream_seed(meta.base_seed, k as u64);
        if record.seed != expect_seed {
            return Err(format!(
                "record for cell {} seed-index {} carries seed {:#x}, expected {expect_seed:#x} \
                 (mixed base seeds in one stream?)",
                record.cell, record.seed_index, record.seed
            ));
        }
        let advance = match &open {
            None => true,
            Some(acc) if acc.index() != record.cell => true,
            Some(_) => false,
        };
        if advance {
            if let Some(acc) = open.take() {
                if !acc.is_complete() {
                    return Err(format!(
                        "cell {} has only {} of {} runs in the stream",
                        acc.index(),
                        acc.absorbed(),
                        meta.seeds
                    ));
                }
                cells.push(acc.finalize(meta.confidence));
            }
            if let Some(last) = cells.last() {
                if record.cell <= last.index {
                    return Err(format!(
                        "stream is not in canonical order: cell {} after cell {}",
                        record.cell, last.index
                    ));
                }
            }
            if record.seed_index != 0 {
                return Err(format!(
                    "cell {} stream starts at seed index {}, not 0",
                    record.cell, record.seed_index
                ));
            }
            open = Some(CellAccumulator::new(record.cell, point.clone(), meta.seeds));
        }
        let acc = open
            .as_mut()
            .ok_or_else(|| "accumulator missing (internal error)".to_string())?;
        if record.seed_index != acc.absorbed() {
            return Err(format!(
                "cell {} stream jumps from seed index {} to {}",
                record.cell,
                acc.absorbed(),
                record.seed_index
            ));
        }
        acc.absorb(&record);
    }
    if let Some(acc) = open.take() {
        if !acc.is_complete() {
            return Err(format!(
                "cell {} has only {} of {} runs in the stream",
                acc.index(),
                acc.absorbed(),
                meta.seeds
            ));
        }
        cells.push(acc.finalize(meta.confidence));
    }
    let total_runs = cells.len() * meta.seeds;
    Ok(CampaignReport {
        scenario: meta.scenario.clone(),
        description: meta.description.clone(),
        base_seed: meta.base_seed,
        seeds: meta.seeds,
        confidence: meta.confidence,
        shard: meta.shard,
        grid_cells: grid.len(),
        total_runs,
        cells,
    })
}

/// The original two-pass aggregation: collect every [`RunRecord`], then
/// summarize each cell from the full batch.
///
/// Kept **only** as the differential reference for the streaming path —
/// it holds O(runs) memory by design, which is exactly what the streaming
/// rebuild removed from the live runner. The differential suites run both
/// paths over the same recorded stream and assert byte-equal reports.
///
/// Requires a complete unsharded batch (`grid.len() × meta.seeds`
/// records in canonical order).
pub fn aggregate_two_pass(
    meta: &CampaignMeta,
    grid: &[GridPoint],
    runs: &[RunRecord],
) -> Result<CampaignReport, String> {
    if meta.seeds == 0 {
        return Err("campaign needs at least one seed per cell".to_string());
    }
    if runs.len() != grid.len() * meta.seeds {
        return Err(format!(
            "two-pass reference needs a complete batch: {} runs for a {}-cell x {}-seed grid",
            runs.len(),
            grid.len(),
            meta.seeds
        ));
    }
    let mut cell_reports = Vec::with_capacity(grid.len());
    for (index, point) in grid.iter().enumerate() {
        let cell_runs = runs
            .get(index * meta.seeds..(index + 1) * meta.seeds)
            .ok_or_else(|| format!("cell {index} slice out of range"))?;

        // Metric order: first recorded across the cell's runs, canonical.
        let mut names: Vec<&str> = Vec::new();
        for run in cell_runs {
            if let RunStatus::Ok(metrics) = &run.status {
                for (name, _) in metrics.entries() {
                    if !names.contains(&name.as_str()) {
                        names.push(name);
                    }
                }
            }
        }

        let metrics = names
            .iter()
            .map(|name| {
                let samples: Vec<f64> = cell_runs
                    .iter()
                    .filter_map(|run| match &run.status {
                        RunStatus::Ok(metrics) => metrics.get(name),
                        RunStatus::Failed(_) => None,
                    })
                    .collect();
                let s = tm_stats::Summary::of(&samples);
                let ci_half = tm_stats::t_interval(&samples, meta.confidence)
                    .map(|ci| ci.half_width)
                    .unwrap_or(0.0);
                MetricAggregate {
                    name: name.to_string(),
                    n: s.count,
                    mean: s.mean,
                    sd: s.sd,
                    min: s.min,
                    max: s.max,
                    ci_half,
                    q50: quantile(&samples, 0.5).unwrap_or(0.0),
                }
            })
            .collect();

        let failures = cell_runs
            .iter()
            .filter_map(|run| match &run.status {
                RunStatus::Failed(cause) => Some((run.seed, cause.clone())),
                RunStatus::Ok(_) => None,
            })
            .collect();

        cell_reports.push(CellReport {
            index,
            point: point.clone(),
            seeds: meta.seeds,
            failures,
            metrics,
        });
    }
    Ok(CampaignReport {
        scenario: meta.scenario.clone(),
        description: meta.description.clone(),
        base_seed: meta.base_seed,
        seeds: meta.seeds,
        confidence: meta.confidence,
        shard: Shard::full(),
        grid_cells: grid.len(),
        total_runs: runs.len(),
        cells: cell_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Axis, Metrics, Registry, Scenario};
    use crate::runner::run_campaign;

    fn one_cell_registry() -> Registry {
        let mut r = Registry::new();
        r.register(Scenario::new(
            "lin",
            "seed modulo grid",
            vec![Axis::new("k", &["2", "3"])],
            |point, seed| {
                let k: u64 = point.get("k").and_then(|v| v.parse().ok()).unwrap_or(1);
                Metrics::new().with("m", (seed % k) as f64)
            },
        ))
        .expect("register");
        r
    }

    #[test]
    fn aggregates_follow_the_merged_stream() {
        let mut spec = CampaignSpec::new("lin", 11);
        spec.seeds = 4;
        let report = run_campaign(&one_cell_registry(), &spec).expect("campaign");
        assert_eq!(report.cells.len(), 2);
        let cell = &report.cells[0];
        assert_eq!(cell.ok(), 4);
        let expect: Vec<f64> = (0..4)
            .map(|k| (tm_rand::stream_seed(11, k) % 2) as f64)
            .collect();
        let s = tm_stats::Summary::of(&expect);
        assert_eq!(cell.metrics[0].n, 4);
        assert!((cell.metrics[0].mean - s.mean).abs() < 1e-12);
        assert!((cell.metrics[0].sd - s.sd).abs() < 1e-12);
    }

    #[test]
    fn render_contains_cells_metrics_and_totals() {
        let mut spec = CampaignSpec::new("lin", 11);
        spec.seeds = 3;
        let report = run_campaign(&one_cell_registry(), &spec).expect("campaign");
        let text = report.render();
        assert!(text.contains("CAMPAIGN lin: 2 cells x 3 seeds"), "{text}");
        assert!(text.contains("[k=2]"), "{text}");
        assert!(text.contains("[k=3]"), "{text}");
        assert!(text.contains("total: 6/6 runs ok, 0 failed"), "{text}");
    }

    #[test]
    fn sharded_render_carries_the_shard_marker() {
        let mut spec = CampaignSpec::new("lin", 11);
        spec.seeds = 3;
        spec.shard = Shard { index: 1, count: 2 };
        let report = run_campaign(&one_cell_registry(), &spec).expect("campaign");
        let text = report.render();
        assert!(
            text.contains("CAMPAIGN lin [shard 1/2]: 1 of 2 cells x 3 seeds"),
            "{text}"
        );
        assert!(text.contains("[k=3]"), "{text}");
        assert!(
            !text.contains("[k=2]"),
            "shard 1/2 must not own cell 0: {text}"
        );
    }

    #[test]
    fn aggregate_stream_rejects_malformed_streams() {
        let meta = CampaignMeta {
            scenario: "s".into(),
            description: "d".into(),
            base_seed: 5,
            seeds: 2,
            confidence: 0.95,
            shard: Shard::full(),
        };
        let grid = vec![GridPoint { coords: Vec::new() }];
        let rec = |cell: usize, seed_index: usize| RunRecord {
            cell,
            seed_index,
            seed: tm_rand::stream_seed(5, (cell * 2 + seed_index) as u64),
            status: RunStatus::Ok(Metrics::new().with("m", 1.0)),
        };
        // Complete stream aggregates.
        assert!(aggregate_stream(&meta, &grid, vec![rec(0, 0), rec(0, 1)]).is_ok());
        // Missing the cell's second run.
        assert!(aggregate_stream(&meta, &grid, vec![rec(0, 0)]).is_err());
        // Out-of-grid cell.
        assert!(aggregate_stream(&meta, &grid, vec![rec(3, 0)]).is_err());
        // Wrong stored seed (mixed streams).
        let mut bad = rec(0, 0);
        bad.seed ^= 1;
        assert!(aggregate_stream(&meta, &grid, vec![bad, rec(0, 1)]).is_err());
        // Out-of-order seed indices.
        assert!(aggregate_stream(&meta, &grid, vec![rec(0, 1), rec(0, 0)]).is_err());
    }
}
