//! Streaming aggregation over the canonical merged run stream: per-cell
//! summary statistics, confidence intervals, and the paper-style
//! `value ± CI` text report.

use tm_stats::{quantile, t_interval, Summary};

use crate::registry::{GridPoint, Scenario};
use crate::runner::{CampaignSpec, RunRecord, RunStatus};

/// Aggregate statistics for one metric across a cell's successful seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricAggregate {
    /// Metric name, as recorded by the adapter.
    pub name: String,
    /// Number of samples (successful runs recording this metric).
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Half-width of the Student-t interval on the mean at
    /// [`CampaignReport::confidence`].
    pub ci_half: f64,
    /// Median (empirical, type-7).
    pub q50: f64,
}

impl MetricAggregate {
    /// `mean ± ci_half` with the given precision.
    pub fn mean_pm_ci(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.ci_half)
    }
}

/// Aggregates for one grid cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    /// Canonical cell index.
    pub index: usize,
    /// The cell's grid point.
    pub point: GridPoint,
    /// Seeds attempted.
    pub seeds: usize,
    /// Failed runs as `(seed, cause)`, in seed order.
    pub failures: Vec<(u64, String)>,
    /// Per-metric aggregates, in first-recorded order.
    pub metrics: Vec<MetricAggregate>,
}

impl CellReport {
    /// Successful run count.
    pub fn ok(&self) -> usize {
        self.seeds - self.failures.len()
    }
}

/// The full campaign result: merged runs plus per-cell aggregates.
///
/// Everything here — including [`CampaignReport::render`] — is a pure
/// function of the merged canonical run stream, so it is byte-identical
/// for any worker count.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description (from the registry).
    pub description: String,
    /// The spec's base seed.
    pub base_seed: u64,
    /// Seeds per cell.
    pub seeds: usize,
    /// Confidence level of the intervals.
    pub confidence: f64,
    /// Per-cell aggregates, in canonical cell order.
    pub cells: Vec<CellReport>,
    /// The raw merged run stream, in canonical `(cell, seed)` order.
    pub runs: Vec<RunRecord>,
}

impl CampaignReport {
    /// Total failed runs across all cells.
    pub fn total_failures(&self) -> usize {
        self.cells.iter().map(|c| c.failures.len()).sum()
    }

    /// Renders the paper-style report: one block per cell, one
    /// `metric  mean ± CI` line per metric, failures called out inline.
    pub fn render(&self) -> String {
        let mut out = format!(
            "CAMPAIGN {name}: {cells} cells x {seeds} seeds (base seed {seed:#x}, {conf:.0}% CI)\n",
            name = self.scenario,
            cells = self.cells.len(),
            seeds = self.seeds,
            seed = self.base_seed,
            conf = self.confidence * 100.0,
        );
        out.push_str(&format!("  {}\n\n", self.description));
        for cell in &self.cells {
            out.push_str(&format!(
                "[{label}] seeds={seeds} ok={ok} failed={failed}\n",
                label = cell.point.label(),
                seeds = cell.seeds,
                ok = cell.ok(),
                failed = cell.failures.len(),
            ));
            for m in &cell.metrics {
                out.push_str(&format!(
                    "  {name:<28} {pm:>24}  (n={n}, sd {sd:.3}, min {min:.3}, q50 {q50:.3}, max {max:.3})\n",
                    name = m.name,
                    pm = m.mean_pm_ci(3),
                    n = m.n,
                    sd = m.sd,
                    min = m.min,
                    q50 = m.q50,
                    max = m.max,
                ));
            }
            for (seed, cause) in &cell.failures {
                out.push_str(&format!("  FAILED(seed {seed:#018x}): {cause}\n"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "total: {ok}/{all} runs ok, {failed} failed\n",
            ok = self.runs.len() - self.total_failures(),
            all = self.runs.len(),
            failed = self.total_failures(),
        ));
        out
    }
}

/// Folds the canonical run stream into per-cell aggregates.
pub(crate) fn aggregate(
    scenario: &Scenario,
    spec: &CampaignSpec,
    cells: Vec<GridPoint>,
    runs: Vec<RunRecord>,
) -> CampaignReport {
    let mut cell_reports = Vec::with_capacity(cells.len());
    for (index, point) in cells.into_iter().enumerate() {
        let cell_runs = &runs[index * spec.seeds..(index + 1) * spec.seeds];

        // Metric order: first recorded across the cell's runs, canonical.
        let mut names: Vec<&str> = Vec::new();
        for run in cell_runs {
            if let RunStatus::Ok(metrics) = &run.status {
                for (name, _) in metrics.entries() {
                    if !names.contains(&name.as_str()) {
                        names.push(name);
                    }
                }
            }
        }

        let metrics = names
            .iter()
            .map(|name| {
                let samples: Vec<f64> = cell_runs
                    .iter()
                    .filter_map(|run| match &run.status {
                        RunStatus::Ok(metrics) => metrics.get(name),
                        RunStatus::Failed(_) => None,
                    })
                    .collect();
                let s = Summary::of(&samples);
                let ci_half = t_interval(&samples, spec.confidence)
                    .map(|ci| ci.half_width)
                    .unwrap_or(0.0);
                MetricAggregate {
                    name: name.to_string(),
                    n: s.count,
                    mean: s.mean,
                    sd: s.sd,
                    min: s.min,
                    max: s.max,
                    ci_half,
                    q50: quantile(&samples, 0.5).unwrap_or(0.0),
                }
            })
            .collect();

        let failures = cell_runs
            .iter()
            .filter_map(|run| match &run.status {
                RunStatus::Failed(cause) => Some((run.seed, cause.clone())),
                RunStatus::Ok(_) => None,
            })
            .collect();

        cell_reports.push(CellReport {
            index,
            point,
            seeds: spec.seeds,
            failures,
            metrics,
        });
    }
    CampaignReport {
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        base_seed: spec.base_seed,
        seeds: spec.seeds,
        confidence: spec.confidence,
        cells: cell_reports,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Axis, Metrics, Registry, Scenario};
    use crate::runner::run_campaign;

    fn one_cell_registry() -> Registry {
        let mut r = Registry::new();
        r.register(Scenario::new(
            "lin",
            "seed modulo grid",
            vec![Axis::new("k", &["2", "3"])],
            |point, seed| {
                let k: u64 = point.get("k").and_then(|v| v.parse().ok()).unwrap_or(1);
                Metrics::new().with("m", (seed % k) as f64)
            },
        ))
        .expect("register");
        r
    }

    #[test]
    fn aggregates_follow_the_merged_stream() {
        let mut spec = CampaignSpec::new("lin", 11);
        spec.seeds = 4;
        let report = run_campaign(&one_cell_registry(), &spec).expect("campaign");
        assert_eq!(report.cells.len(), 2);
        let cell = &report.cells[0];
        assert_eq!(cell.ok(), 4);
        let expect: Vec<f64> = (0..4)
            .map(|k| (tm_rand::stream_seed(11, k) % 2) as f64)
            .collect();
        let s = Summary::of(&expect);
        assert_eq!(cell.metrics[0].n, 4);
        assert!((cell.metrics[0].mean - s.mean).abs() < 1e-12);
        assert!((cell.metrics[0].sd - s.sd).abs() < 1e-12);
    }

    #[test]
    fn render_contains_cells_metrics_and_totals() {
        let mut spec = CampaignSpec::new("lin", 11);
        spec.seeds = 3;
        let report = run_campaign(&one_cell_registry(), &spec).expect("campaign");
        let text = report.render();
        assert!(text.contains("CAMPAIGN lin: 2 cells x 3 seeds"), "{text}");
        assert!(text.contains("[k=2]"), "{text}");
        assert!(text.contains("[k=3]"), "{text}");
        assert!(text.contains("total: 6/6 runs ok, 0 failed"), "{text}");
    }
}
