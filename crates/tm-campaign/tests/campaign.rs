//! The campaign contract, pinned:
//!
//! 1. `--workers 1` and `--workers 8` produce **byte-identical** reports
//!    for the same spec and seed range (canonical merge order).
//! 2. A deliberately panicking parameter point yields a failed-cell
//!    report — the campaign completes instead of crashing.
//! 3. Per-run seeds depend only on `(base seed, canonical index)`.
//! 4. The streaming aggregation path is byte-identical to the retained
//!    two-pass reference over the same canonical stream.
//! 5. The union of all shards, merged in cell order, is byte-identical to
//!    the unsharded run — at every shard count and worker count.

use tm_campaign::{
    aggregate_stream, aggregate_two_pass, run_campaign, run_campaign_with, Axis, CampaignMeta,
    CampaignSpec, Metrics, RecordingSink, Registry, Resume, RunStatus, Scenario, Shard,
};
use tm_rand::{Rng, StdRng};

/// A registry of synthetic scenarios: deterministic arithmetic with a
/// seeded RNG (so distinct seeds genuinely produce distinct samples), and
/// a scenario with one poisoned grid cell.
fn registry() -> Registry {
    let mut r = Registry::new();
    r.register(Scenario::new(
        "synthetic",
        "seeded pseudo-measurements over a 2x3 grid",
        vec![
            Axis::new("mode", &["fast", "slow"]),
            Axis::new("level", &["0", "1", "2"]),
        ],
        |point, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let scale = if point.get("mode") == Some("fast") {
                1.0
            } else {
                10.0
            };
            let level: f64 = point
                .get("level")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0);
            let latency = scale * (level + 1.0) * (1.0 + rng.gen_range(0.0..0.5));
            Metrics::new()
                .with("latency_ms", latency)
                .with("detected", f64::from(u8::from(rng.gen_bool(0.5))))
        },
    ))
    .expect("register synthetic");
    r.register(Scenario::new(
        "poisoned",
        "one grid cell panics on every seed",
        vec![Axis::new("cell", &["good", "bad"])],
        |point, seed| {
            if point.get("cell") == Some("bad") {
                panic!("deliberate failure for cell=bad");
            }
            Metrics::new().with("value", (seed % 100) as f64)
        },
    ))
    .expect("register poisoned");
    r
}

fn spec(scenario: &str, workers: usize) -> CampaignSpec {
    let mut s = CampaignSpec::new(scenario, 0xD5_2018);
    s.seeds = 6;
    s.workers = workers;
    s
}

/// Runs a campaign while recording the canonical stream it emits.
fn run_recorded(r: &Registry, spec: &CampaignSpec) -> (tm_campaign::CampaignReport, RecordingSink) {
    let mut sink = RecordingSink::default();
    let report = run_campaign_with(r, spec, &Resume::none(), &mut sink).expect("campaign");
    (report, sink)
}

#[test]
fn workers_1_and_8_are_byte_identical() {
    let r = registry();
    let (serial, serial_sink) = run_recorded(&r, &spec("synthetic", 1));
    let (pooled, pooled_sink) = run_recorded(&r, &spec("synthetic", 8));
    assert_eq!(
        serial.render(),
        pooled.render(),
        "aggregate output must not depend on worker count"
    );
    // The structured reports — and the raw canonical streams the sinks
    // observed, not just the rendering — must agree too.
    assert_eq!(serial_sink.runs, pooled_sink.runs);
    assert_eq!(serial.cells, pooled.cells);
    assert_eq!(serial, pooled);
}

#[test]
fn campaigns_replay_exactly_and_diverge_across_base_seeds() {
    let r = registry();
    let a = run_campaign(&r, &spec("synthetic", 4)).expect("first");
    let b = run_campaign(&r, &spec("synthetic", 4)).expect("second");
    assert_eq!(a.render(), b.render(), "same spec must replay exactly");
    let mut other = spec("synthetic", 4);
    other.base_seed = 0xBEEF;
    let c = run_campaign(&r, &other).expect("other base seed");
    assert_ne!(a.render(), c.render(), "base seed must matter");
}

#[test]
fn panicking_cell_reports_failure_instead_of_crashing() {
    let r = registry();
    let report = run_campaign(&r, &spec("poisoned", 4)).expect("campaign survives");
    assert_eq!(report.cells.len(), 2);

    let good = &report.cells[0];
    assert_eq!(good.point.label(), "cell=good");
    assert_eq!(good.ok(), 6);
    assert!(good.failures.is_empty());
    assert_eq!(good.metrics.len(), 1);

    let bad = &report.cells[1];
    assert_eq!(bad.point.label(), "cell=bad");
    assert_eq!(bad.ok(), 0);
    assert_eq!(bad.failures.len(), 6);
    for (_, cause) in &bad.failures {
        assert_eq!(cause, "deliberate failure for cell=bad");
    }
    assert!(bad.metrics.is_empty(), "no samples, no aggregates");

    let text = report.render();
    assert!(text.contains("FAILED("), "{text}");
    assert!(text.contains("deliberate failure for cell=bad"), "{text}");
    assert!(text.contains("total: 6/12 runs ok, 6 failed"), "{text}");
}

#[test]
fn failed_cells_are_identical_across_worker_counts() {
    let r = registry();
    let serial = run_campaign(&r, &spec("poisoned", 1)).expect("workers=1");
    let pooled = run_campaign(&r, &spec("poisoned", 8)).expect("workers=8");
    assert_eq!(serial.render(), pooled.render());
}

#[test]
fn per_run_seeds_are_canonical() {
    let r = registry();
    let (report, sink) = run_recorded(&r, &spec("synthetic", 2));
    for (k, run) in sink.runs.iter().enumerate() {
        assert_eq!(run.seed, tm_rand::stream_seed(0xD5_2018, k as u64));
        assert!(matches!(run.status, RunStatus::Ok(_)));
    }
    // 6 cells x 6 seeds.
    assert_eq!(sink.runs.len(), 36);
    assert_eq!(report.total_runs, 36);
}

#[test]
fn streaming_matches_the_two_pass_reference_byte_for_byte() {
    let r = registry();
    for scenario in ["synthetic", "poisoned"] {
        let s = spec(scenario, 3);
        let (live, sink) = run_recorded(&r, &s);
        let grid = r.get(scenario).expect("scenario").cells();
        let meta = CampaignMeta::for_spec(r.get(scenario).expect("scenario"), &s);

        let two_pass = aggregate_two_pass(&meta, &grid, &sink.runs).expect("two-pass");
        assert_eq!(
            live.render(),
            two_pass.render(),
            "{scenario}: live streaming vs two-pass render"
        );
        assert_eq!(live.cells, two_pass.cells, "{scenario}: structured cells");

        let replayed =
            aggregate_stream(&meta, &grid, sink.runs.iter().cloned()).expect("stream replay");
        assert_eq!(
            live.render(),
            replayed.render(),
            "{scenario}: replaying the recorded stream"
        );
        assert_eq!(live, replayed, "{scenario}: replayed report");
    }
}

#[test]
fn shard_union_equals_the_unsharded_run_byte_for_byte() {
    let r = registry();
    for scenario in ["synthetic", "poisoned"] {
        let whole = run_campaign(&r, &spec(scenario, 2)).expect("unsharded");
        for count in [2u32, 3, 4] {
            let mut cells = Vec::new();
            let mut union_runs = Vec::new();
            for index in 0..count {
                let mut s = spec(scenario, 3);
                s.shard = Shard { index, count };
                let (part, sink) = run_recorded(&r, &s);
                assert!(
                    part.cells.iter().all(|c| s.shard.owns(c.index)),
                    "{scenario}: shard {index}/{count} reported a foreign cell"
                );
                cells.extend(part.cells);
                union_runs.extend(sink.runs);
            }
            cells.sort_by_key(|c| c.index);
            assert_eq!(
                cells, whole.cells,
                "{scenario}: {count}-way shard union vs unsharded cells"
            );
            // Merging the raw shard streams into canonical order and
            // re-aggregating also reproduces the unsharded report.
            union_runs.sort_by_key(|run| run.cell * 6 + run.seed_index);
            let scenario_ref = r.get(scenario).expect("scenario");
            let meta = CampaignMeta::for_spec(scenario_ref, &spec(scenario, 1));
            let merged =
                aggregate_stream(&meta, &scenario_ref.cells(), union_runs).expect("merged stream");
            assert_eq!(
                merged.render(),
                whole.render(),
                "{scenario}: merged {count}-way stream vs unsharded render"
            );
        }
    }
}
