#!/usr/bin/env sh
# Hermetic verification: everything here must pass on a machine with no
# network access and an empty cargo registry — the workspace has zero
# external dependencies by policy (see DESIGN.md).
set -eux

cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings
# Documentation is part of the contract: broken intra-doc links or missing
# docs on public items fail the build. Fully offline, no deps to fetch.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

# Determinism lint, twice: a cold run populates target/tm-lint-cache,
# the warm run must hit it for every file ("misses":0) and stay under
# the 2-second incremental budget (wall_ms counts analysis, not cargo).
tmp="${TMPDIR:-/tmp}"
rm -rf target/tm-lint-cache
cargo run -q -p tm-lint --offline >"$tmp/tm_lint_cold.out"
cargo run -q -p tm-lint --offline >"$tmp/tm_lint_warm.out"
grep '^TM_LINT_JSON ' "$tmp/tm_lint_warm.out" | grep -q '"misses":0'
warm_ms=$(sed -n 's/^TM_LINT_JSON .*"wall_ms":\([0-9]*\).*/\1/p' "$tmp/tm_lint_warm.out")
test "$warm_ms" -lt 2000

cargo build --release --offline
cargo test -q --offline --workspace
cargo bench --no-run --offline

# Scheduler-backend differential, full registry: every campaign scenario
# must render byte-identical reports on the timing wheel and the legacy
# binary heap, at workers 1 and 2. Minutes of virtual time per scenario,
# so it is #[ignore]d in the debug tier and runs here in release.
cargo test -q --release --offline --test sched_diff -- --ignored

# Live determinism check: the smoke campaign (2 cheap scenarios x 3 seeds)
# must produce byte-identical stdout at --workers 1 and --workers 2. The
# wall-clock BENCH_JSON records go to stderr precisely so they stay out of
# this diff.
cargo run -q --release --offline -p bench --bin experiments -- \
    campaign smoke --seeds 3 --workers 1 \
    >"$tmp/tm_campaign_w1.out" 2>"$tmp/tm_campaign_w1.err"
cargo run -q --release --offline -p bench --bin experiments -- \
    campaign smoke --seeds 3 --workers 2 \
    >"$tmp/tm_campaign_w2.out" 2>"$tmp/tm_campaign_w2.err"
diff "$tmp/tm_campaign_w1.out" "$tmp/tm_campaign_w2.out"

# Warehouse-scale smoke: sharding, crash-resume, and run-log replay on
# the cheap probe-overhead grid. (1) a single-shot run is the byte
# baseline; (2) the same campaign runs as --shard 0/2 + 1/2 with
# --state, writing checkpoints and binary run-logs; (3) shard 0's
# checkpoint AND run-log both lose their last 11 bytes (a simulated
# mid-write crash) and --resume must carry the surviving cells over and
# reproduce the fresh shard stdout exactly; (4) `campaign replay` over
# the two shard logs re-aggregates the merged stream without
# re-simulating and must equal the single-shot stdout byte for byte.
state="$tmp/tm_campaign_state"
rm -rf "$state"
cargo run -q --release --offline -p bench --bin experiments -- \
    campaign probe-overhead --seeds 6 --workers 2 \
    >"$tmp/tm_shard_single.out" 2>/dev/null
cargo run -q --release --offline -p bench --bin experiments -- \
    campaign probe-overhead --seeds 6 --workers 2 --shard 0/2 --state "$state" \
    >"$tmp/tm_shard_0.out" 2>"$tmp/tm_shard_0.err"
cargo run -q --release --offline -p bench --bin experiments -- \
    campaign probe-overhead --seeds 6 --workers 2 --shard 1/2 --state "$state" \
    >"$tmp/tm_shard_1.out" 2>"$tmp/tm_shard_1.err"
for f in "$state/probe-overhead.shard0of2.ckpt" \
         "$state/probe-overhead.shard0of2.runlog"; do
    size=$(wc -c <"$f")
    head -c $((size - 11)) "$f" >"$f.cut"
    mv "$f.cut" "$f"
done
cargo run -q --release --offline -p bench --bin experiments -- \
    campaign probe-overhead --seeds 6 --workers 2 --shard 0/2 --state "$state" --resume \
    >"$tmp/tm_shard_resume.out" 2>"$tmp/tm_shard_resume.err"
grep -q '^resume: ' "$tmp/tm_shard_resume.err"
diff "$tmp/tm_shard_0.out" "$tmp/tm_shard_resume.out"
cargo run -q --release --offline -p bench --bin experiments -- \
    campaign replay "$state/probe-overhead.shard0of2.runlog" \
    "$state/probe-overhead.shard1of2.runlog" \
    >"$tmp/tm_shard_replay.out" 2>"$tmp/tm_shard_replay.err"
grep -q 'without re-simulating' "$tmp/tm_shard_replay.err"
diff "$tmp/tm_shard_single.out" "$tmp/tm_shard_replay.out"

# Topology-parameterized matrix smoke: one fat-tree hijack cell, offline,
# single seed. Guards the whole fabric-elaboration path (generator → role
# mapping → tree-scoped flooding → scenario) end to end; isolated-run
# panics surface as failed= counts in the report, so the cell must report
# failed=0 and nothing else.
cargo run -q --release --offline -p bench --bin experiments -- \
    matrix --topo fat-tree-4 --attacks port-probing-hijack --stacks none \
    --seeds 1 --workers 1 >"$tmp/tm_topo_matrix.out" 2>/dev/null
grep -q 'failed=0' "$tmp/tm_topo_matrix.out"
! grep -q 'failed=[1-9]' "$tmp/tm_topo_matrix.out"

# High-load smoke cell: the 102,400-host flow-level throughput probe
# (fat-tree-4, steady-2 demand, TOPOGUARD+). Guards the traffic engine
# end to end — plan elaboration → arrival chains → detector-boundary
# expansion → controller — and records the aggregation leverage. The
# probe's stdout is a pure function of the seed; its speedup line is the
# flow-level-vs-per-packet floor and must stay at least 50x.
cargo run -q --release --offline -p bench --bin experiments -- \
    load --probe-only >"$tmp/tm_load_probe.out" 2>"$tmp/tm_load_probe.err"
grep -q 'flow-level speedup' "$tmp/tm_load_probe.out"
probe_speedup=$(sed -n 's/.*flow-level speedup  *\([0-9]*\)x.*/\1/p' "$tmp/tm_load_probe.out")
test "$probe_speedup" -ge 50

# Perf trajectory: campaign wall-clock at both worker counts, the
# traffic-throughput probe, plus the in-house bench medians.
# TM_BENCH_SAMPLES=3 keeps this a smoke run; the artifact records the
# trajectory, it is not a rigorous benchmark.
TM_BENCH_SAMPLES=3 cargo bench --offline -p bench >"$tmp/tm_bench.out"
{
    printf '{\n  "campaign_wall": [\n'
    cat "$tmp/tm_campaign_w1.err" "$tmp/tm_campaign_w2.err" \
        | grep '^BENCH_JSON ' | sed -e 's/^BENCH_JSON /    /' -e 's/$/,/' -e '$s/,$//'
    printf '  ],\n  "campaign_scale": [\n'
    cat "$tmp/tm_shard_0.err" "$tmp/tm_shard_1.err" "$tmp/tm_shard_resume.err" \
        | grep '^BENCH_JSON ' | sed -e 's/^BENCH_JSON /    /' -e 's/$/,/' -e '$s/,$//'
    printf '  ],\n  "traffic_throughput": [\n'
    grep '^BENCH_JSON ' "$tmp/tm_load_probe.err" \
        | sed -e 's/^BENCH_JSON /    /' -e 's/$/,/' -e '$s/,$//'
    printf '  ],\n  "bench": [\n'
    grep '^BENCH_JSON ' "$tmp/tm_bench.out" \
        | sed -e 's/^BENCH_JSON /    /' -e 's/$/,/' -e '$s/,$//'
    printf '  ],\n  "lint": '
    grep '^TM_LINT_JSON ' "$tmp/tm_lint_warm.out" | sed 's/^TM_LINT_JSON //'
    printf '}\n'
} >BENCH_topomirage.json
