#!/usr/bin/env sh
# Hermetic verification: everything here must pass on a machine with no
# network access and an empty cargo registry — the workspace has zero
# external dependencies by policy (see DESIGN.md).
set -eux

cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings
cargo run -q -p tm-lint --offline
cargo build --release --offline
cargo test -q --offline --workspace
cargo bench --no-run --offline
