//! The Port Amnesia link-fabrication attack (paper §IV-A, Fig. 1), run
//! against successively stronger defenses:
//!
//! 1. A naive LLDP relay vs TopoGuard — caught (the baseline works).
//! 2. Out-of-band Port Amnesia vs TopoGuard + SPHINX — bypassed, with a
//!    working man-in-the-middle bridge.
//! 3. The same attack vs TOPOGUARD+ on the Fig. 9 evaluation testbed —
//!    detected by the CMM/LLI and blocked (Figs. 12/13).
//!
//! ```sh
//! cargo run --example link_fabrication
//! ```

use topomirage::scenarios::linkfab::{self, LinkFabScenario, RelayMode};
use topomirage::scenarios::DefenseStack;

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    banner("1. naive LLDP relay vs TopoGuard");
    let out = linkfab::run(&LinkFabScenario::new(
        RelayMode::NaiveNoAmnesia,
        DefenseStack::TopoGuard,
        1,
    ));
    println!(
        "  link established: {}   alerts: {} (fabrication: {})",
        out.link_established, out.alerts_total, out.fabrication_alerts
    );
    assert!(!out.link_established && out.detected());
    println!("  -> TopoGuard stops the naive relay, as designed.");

    banner("2. out-of-band Port Amnesia vs TopoGuard + SPHINX");
    let out = linkfab::run(&LinkFabScenario::new(
        RelayMode::OutOfBand,
        DefenseStack::TopoGuardSphinx,
        2,
    ));
    println!(
        "  link established: {}   alerts: {}   bridged frames: {}   benign pings over fake link: {}",
        out.link_established, out.alerts_total, out.bridged_frames, out.benign_pings_ok
    );
    println!(
        "  attacker A: {} LLDP captured, {} injected, {} amnesia cycles",
        out.stats_a.lldp_captured, out.stats_a.lldp_injected, out.stats_a.amnesia_cycles
    );
    assert!(out.succeeded_undetected());
    println!("  -> Port Amnesia cleared the HOST profile before injecting:");
    println!("     the controller believes 0x1:1 <-> 0x2:1 is a switch link,");
    println!("     and every h1<->h2 packet now transits the attackers.");

    banner("3. the same attack vs TOPOGUARD+ (Fig. 9 evaluation testbed)");
    let out = linkfab::run(&LinkFabScenario::paper_eval(
        RelayMode::OutOfBand,
        DefenseStack::TopoGuardPlus,
        3,
    ));
    println!(
        "  link established: {}   CMM alerts: {}   LLI alerts: {}",
        out.link_established, out.cmm_alerts, out.lli_alerts
    );
    assert!(!out.link_established && out.detected());
    println!("  -> TOPOGUARD+ flags the amnesia bounce (CMM) and the relay");
    println!("     latency (LLI), and blocks every fabricated-link update.");

    banner("4. in-band Port Amnesia (context switching) vs TOPOGUARD+");
    let out = linkfab::run(&LinkFabScenario::paper_eval(
        RelayMode::InBand,
        DefenseStack::TopoGuardPlus,
        4,
    ));
    println!(
        "  link established: {}   CMM alerts: {}   amnesia cycles: {}",
        out.link_established,
        out.cmm_alerts,
        out.stats_a.amnesia_cycles + out.stats_b.amnesia_cycles
    );
    assert!(!out.link_established && out.cmm_alerts > 0);
    println!("  -> every context switch bounced a port mid-LLDP-propagation;");
    println!("     the Control Message Monitor saw all of them (Fig. 12).");
}
