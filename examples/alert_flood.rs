//! Alert flooding (paper §IV-B, "Alert Floods"): because TopoGuard/SPHINX
//! alerts never alter network state, an attacker can spoof arbitrary
//! identifiers and drown the operator's triage queue — hiding a real
//! hijack among spurious migrations.
//!
//! ```sh
//! cargo run --example alert_flood
//! ```

use topomirage::scenarios::floodsc::{self, FloodScenario};
use topomirage::scenarios::DefenseStack;

fn main() {
    println!("alert flooding vs TopoGuard (8 victims, 20 spoofs/second)\n");
    let out = floodsc::run(&FloodScenario::new(DefenseStack::TopoGuard, 5));
    println!("  spoofed frames sent:     {}", out.spoofs_sent);
    println!("  alerts raised:           {}", out.alerts_total);
    println!("  alert rate:              {:.1}/s", out.alerts_per_sec);
    println!("  identities implicated:   {}", out.identities_implicated);
    assert!(out.alerts_total > 100, "flood must generate alert volume");
    println!();
    println!("every spoofed frame registers a 'migration' with no Port-Down");
    println!("pre-condition, so each one costs the operator an investigation —");
    println!("and nothing distinguishes these from the one real hijack.");
    println!();
    println!("with no defense installed, the same flood raises zero alerts");
    let quiet = floodsc::run(&FloodScenario::new(DefenseStack::None, 5));
    println!("  (control run: {} alerts)", quiet.alerts_total);
    assert_eq!(quiet.alerts_total, 0);
}
