//! Port Probing + host-location hijacking (paper §IV-B, Figs. 2/3), with
//! the full attack timeline printed the way the paper instruments it.
//!
//! ```sh
//! cargo run --example host_hijack
//! ```

use topomirage::scenarios::hijack::{self, HijackScenario};
use topomirage::scenarios::DefenseStack;

fn main() {
    println!("Port Probing attack vs TopoGuard + SPHINX");
    println!("victim migrates (live VM migration, ~2 s downtime window)\n");

    let out = hijack::run(&HijackScenario::new(DefenseStack::TopoGuardSphinx, 7));

    println!(
        "timeline (relative to victim going down at {}):",
        out.victim_down_at
    );
    if let Some(ms) = out.final_probe_start_delay_ms() {
        println!("  {ms:>8.2} ms  attacker's final ARP probe sent       (Fig. 7)");
    }
    if let Some(ms) = out.detect_delay_ms() {
        println!("  {ms:>8.2} ms  probe timeout: victim believed down   (Fig. 8)");
    }
    if let Some(d) = out.timeline.ident_change_duration {
        println!(
            "  {:>8.2} ms  ifconfig identifier change duration   (Fig. 4)",
            d.as_millis_f64()
        );
    }
    if let Some(ms) = out.iface_up_delay_ms() {
        println!("  {ms:>8.2} ms  attacker interface up as the victim   (Fig. 5)");
    }
    if let Some(ms) = out.controller_ack_delay_ms() {
        println!("  {ms:>8.2} ms  controller binds victim ID to attacker (Fig. 6)");
    }

    println!("\nduring the impersonation window:");
    println!(
        "  client pings answered by the attacker: {}",
        out.client_pings_during_hijack
    );
    println!(
        "  defense alerts raised:                 {}",
        out.alerts_before_rejoin
    );
    assert!(out.hijack_succeeded());
    assert!(out.undetected_before_rejoin());
    println!("  -> the hijack is indistinguishable from a legitimate migration.");

    println!("\nafter the real victim rejoins at its new location:");
    println!(
        "  total alerts: {} (identifier conflicts: {}, migration-policy: {})",
        out.alerts_total, out.conflict_alerts, out.migration_alerts
    );
    println!("  -> only now do anomaly detectors see the identity at two live");
    println!("     locations — and they cannot tell attacker from victim,");
    println!("     which is what makes alert flooding possible (see");
    println!("     examples/alert_flood.rs).");
}
