//! Quickstart: build a small SDN, let the controller discover the topology
//! and track hosts, and watch pings flow over reactively-installed paths.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use topomirage::controller::{ControllerConfig, SdnController};
use topomirage::netsim::apps::PeriodicPinger;
use topomirage::netsim::{LinkProfile, NetworkSpec, Simulator};
use topomirage::types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo};

fn main() {
    // Two switches joined by a 5 ms link, one host on each.
    let s1 = DatapathId::new(0x1);
    let s2 = DatapathId::new(0x2);
    let h1 = HostId::new(1);
    let h2 = HostId::new(2);
    let link = LinkProfile::fixed(Duration::from_millis(5));

    let mut spec = NetworkSpec::new();
    spec.add_switch(s1);
    spec.add_switch(s2);
    spec.link_switches(s1, PortNo::new(1), s2, PortNo::new(1), link);
    spec.add_host(h1, MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1));
    spec.add_host(h2, MacAddr::from_index(2), IpAddr::new(10, 0, 0, 2));
    spec.attach_host(h1, s1, PortNo::new(2), link);
    spec.attach_host(h2, s2, PortNo::new(2), link);

    // A Floodlight-personality controller (15 s LLDP rounds, 35 s link
    // timeout) with reactive shortest-path forwarding.
    spec.set_controller(Box::new(SdnController::new(ControllerConfig::default())));

    // h1 pings h2 every 200 ms.
    spec.set_host_app(
        h1,
        Box::new(PeriodicPinger::new(
            IpAddr::new(10, 0, 0, 2),
            Duration::from_millis(200),
        )),
    );

    let mut sim = Simulator::new(spec, 42);
    sim.run_for(Duration::from_secs(10));

    let ctrl: &SdnController = sim.controller_as().expect("controller type");
    println!("== discovered links ==");
    for (link, state) in ctrl.topology().links() {
        println!(
            "  {} -> {}   (first seen {}, last verified {})",
            link.src, link.dst, state.first_seen, state.last_seen
        );
    }

    println!("\n== tracked hosts ==");
    for dev in ctrl.devices().devices() {
        let ips: Vec<String> = dev.ips.iter().map(|ip| ip.to_string()).collect();
        println!(
            "  {} [{}] at {}   ({} moves)",
            dev.mac,
            ips.join(", "),
            dev.location,
            dev.move_count
        );
    }

    let pinger: &PeriodicPinger = sim.host_app_as(h1).expect("app type");
    let mean_rtt = pinger.rtts_ms.iter().sum::<f64>() / pinger.rtts_ms.len().max(1) as f64;
    println!(
        "\n== traffic ==\n  {} pings sent, {} replies, mean RTT {:.1} ms",
        pinger.sent, pinger.received, mean_rtt
    );
    println!("  LLDP probes emitted: {}", ctrl.lldp_emitted);
    assert!(pinger.received > 0, "quickstart network must carry traffic");
}
