//! The headline result: every attack variant run against every defense
//! stack. Reproduces the paper's core claims in one table.
//!
//! ```sh
//! cargo run --release --example defense_matrix
//! ```

use topomirage::scenarios::matrix;

fn main() {
    println!("running 4 attacks x 5 defense stacks (Fig. 9 evaluation testbed)...\n");
    let entries = matrix::run_matrix(1000);
    println!("{}", matrix::render(&entries));
    println!("reading the table:");
    println!("  naive-relay         caught by TopoGuard-based stacks (the baseline works)");
    println!("  oob-amnesia         bypasses TopoGuard and SPHINX; only TOPOGUARD+ catches it");
    println!("  in-band             same, via context switching; TOPOGUARD+'s CMM catches it");
    println!("  port-probing-hijack wins the migration race against every stack");
}
