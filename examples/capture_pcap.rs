//! Capture the Port Amnesia attack from the victim network's perspective
//! and export it as a pcap you can open in Wireshark.
//!
//! A `FrameRecorder` taps the benign host h2 while the Fig. 1 out-of-band
//! attack runs; everything h2's NIC sees — including the pings that
//! secretly transited the attackers' fabricated link — lands in
//! `target/port_amnesia.pcap` with simulation-exact timestamps.
//!
//! ```sh
//! cargo run --example capture_pcap
//! wireshark target/port_amnesia.pcap
//! ```

use topomirage::attacks::{OobRelayAttacker, RelayConfig};
use topomirage::controller::ControllerConfig;
use topomirage::netsim::apps::{FrameRecorder, PeriodicPinger};
use topomirage::netsim::pcap::PcapWriter;
use topomirage::netsim::Simulator;
use topomirage::scenarios::testbed;
use topomirage::scenarios::DefenseStack;
use topomirage::types::Duration;

fn main() {
    let (mut spec, ids) = testbed::fig1_spec(DefenseStack::TopoGuard, ControllerConfig::default());
    let relay = |peer| RelayConfig {
        start_after: Duration::from_secs(5),
        ..RelayConfig::oob(peer)
    };
    spec.set_host_app(
        ids.attacker_a,
        Box::new(OobRelayAttacker::new(relay(ids.attacker_b))),
    );
    spec.set_host_app(
        ids.attacker_b,
        Box::new(OobRelayAttacker::new(relay(ids.attacker_a))),
    );
    spec.set_host_app(
        ids.h1,
        Box::new(PeriodicPinger::new(ids.h2_ip, Duration::from_millis(500))),
    );
    // The tap: record everything h2 receives.
    spec.set_host_app(ids.h2, Box::new(FrameRecorder::new()));

    let mut sim = Simulator::new(spec, 2026);
    sim.run_for(Duration::from_secs(40));

    let recorder: &FrameRecorder = sim.host_app_as(ids.h2).expect("tap installed");
    let path = "target/port_amnesia.pcap";
    let mut writer = PcapWriter::create(path).expect("create pcap");
    writer
        .write_all_frames(&recorder.frames)
        .expect("write frames");
    let written = writer.frames_written();
    writer.finish().expect("flush");

    println!("captured {written} frames at h2 -> {path}");
    println!("(those pings crossed two switches with no physical link between");
    println!(" them — every one was ferried by the attackers' relay, and");
    println!(" TopoGuard said nothing)");
    assert!(written > 50, "expected a meaningful capture");
}
