//! # TopoMirage
//!
//! A full reproduction of *"Effective Topology Tampering Attacks and
//! Defenses in Software-Defined Networks"* (Skowyra et al., DSN 2018) as a
//! Rust workspace: a deterministic SDN simulation, a Floodlight-style
//! controller, the TopoGuard and SPHINX defenses, the paper's **Port
//! Amnesia** and **Port Probing** attacks, and the **TOPOGUARD+**
//! countermeasures (Control Message Monitor + Link Latency Inspector).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `sdn-types` | addresses, packets, LLDP TLVs, virtual time |
//! | [`stats`] | `tm-stats` | distributions, quantiles, IQR, histograms |
//! | [`openflow`] | `openflow` | OpenFlow messages and flow tables |
//! | [`netsim`] | `netsim` | the discrete-event network simulator |
//! | [`controller`] | `controller` | link discovery, host tracking, forwarding |
//! | [`topoguard`] | `topoguard` | TopoGuard and TOPOGUARD+ |
//! | [`sphinx`] | `sphinx` | the SPHINX surrogate |
//! | [`ids`] | `tm-ids` | the Snort-style scan detector |
//! | [`attacks`] | `attacks` | Port Amnesia, Port Probing, and friends |
//! | [`scenarios`] | `tm-core` | testbeds, defense stacks, detection matrix |
//! | [`topo`] | `tm-topo` | seeded fat-tree / core-edge / linear / ring generators |
//! | [`telemetry`] | `tm-telemetry` | deterministic counters, gauges, histograms |
//! | [`faults`] | `tm-faults` | declarative fault plans (loss, jitter, flaps, restarts) |
//!
//! # Quickstart
//!
//! ```
//! use topomirage::scenarios::{DefenseStack, linkfab::{self, LinkFabScenario, RelayMode}};
//!
//! // Out-of-band Port Amnesia against TopoGuard: succeeds, undetected.
//! let outcome = linkfab::run(&LinkFabScenario::new(
//!     RelayMode::OutOfBand,
//!     DefenseStack::TopoGuard,
//!     42,
//! ));
//! assert!(outcome.succeeded_undetected());
//! ```

#![forbid(unsafe_code)]

pub use attacks;
pub use controller;
pub use netsim;
pub use openflow;
pub use sdn_types as types;
pub use sphinx;
pub use tm_core as scenarios;
pub use tm_faults as faults;
pub use tm_ids as ids;
pub use tm_stats as stats;
pub use tm_telemetry as telemetry;
pub use tm_topo as topo;
pub use topoguard;
